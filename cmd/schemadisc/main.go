// Command schemadisc runs the paper's Sec 5 schema discovery on a CSV
// directory or a built-in dataset: IND-based foreign-key guesses (with
// gold-standard evaluation when constraints are declared), accession-
// number candidates and the primary-relation ranking.
//
//	schemadisc -data uniprot
//	schemadisc -data pdb -soft 0.99
//	schemadisc -csv ./dump
package main

import (
	"flag"
	"fmt"
	"os"

	"spider"
)

func main() {
	csvDir := flag.String("csv", "", "directory of .csv files to analyse")
	data := flag.String("data", "", "built-in dataset: uniprot|scop|pdb")
	scale := flag.Float64("scale", 0.25, "built-in dataset scale")
	seed := flag.Int64("seed", 42, "built-in dataset seed")
	soft := flag.Float64("soft", 1.0, "accession heuristic threshold (1.0 strict; paper also used 0.9998)")
	maxINDs := flag.Int("maxinds", 40, "maximum INDs to list (0 = all)")
	backendName := flag.String("backend", "fs", "storage backend for the IND discovery pass: fs|mem|snapshot")
	flag.Parse()

	backend, err := spider.ParseBackend(*backendName, "", spider.FormatText)
	if err != nil {
		fmt.Fprintf(os.Stderr, "schemadisc: %v\n", err)
		os.Exit(1)
	}

	var db *spider.Database
	switch {
	case *csvDir != "":
		db, err = spider.LoadCSVDir("csv", *csvDir)
	case *data == "uniprot":
		db = spider.GenerateUniProt(spider.DatasetConfig{Seed: *seed, Scale: *scale})
	case *data == "scop":
		db = spider.GenerateSCOP(spider.DatasetConfig{Seed: *seed, Scale: *scale})
	case *data == "pdb":
		db = spider.GeneratePDB(spider.DatasetConfig{Seed: *seed, Scale: *scale})
	default:
		err = fmt.Errorf("specify -csv DIR or -data uniprot|scop|pdb")
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "schemadisc: %v\n", err)
		os.Exit(1)
	}

	rep, err := spider.DiscoverSchema(db, spider.SchemaOptions{
		Find:                 spider.Options{Store: backend},
		AccessionMinFraction: *soft,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "schemadisc: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("satisfied INDs (foreign-key guesses): %d\n", len(rep.INDs))
	limit := *maxINDs
	if limit == 0 || limit > len(rep.INDs) {
		limit = len(rep.INDs)
	}
	for _, d := range rep.INDs[:limit] {
		fmt.Printf("  %s\n", d)
	}
	if limit < len(rep.INDs) {
		fmt.Printf("  ... and %d more\n", len(rep.INDs)-limit)
	}

	if e := rep.FKEvaluation; e != nil {
		fmt.Printf("\ngold standard: %d declared FKs, %d found, %d unfindable (empty tables), recall %.2f\n",
			e.DeclaredFKs, e.FoundFKs, e.UnfindableEmpty, e.Recall)
		fmt.Printf("transitive-closure INDs: %d, false positives: %d\n",
			e.TransitiveINDs, len(e.FalsePositives))
		for _, fp := range e.FalsePositives {
			fmt.Printf("  false positive: %s\n", fp)
		}
	}

	fmt.Printf("\naccession-number candidates: %d\n", len(rep.AccessionCandidates))
	for _, a := range rep.AccessionCandidates {
		fmt.Printf("  %s (%.2f%% of values)\n", a.Ref, a.Fraction*100)
	}

	fmt.Printf("\nprimary relation ranking:\n")
	for i, p := range rep.PrimaryRelations {
		if i >= 5 {
			fmt.Printf("  ... and %d more\n", len(rep.PrimaryRelations)-5)
			break
		}
		fmt.Printf("  %d. %s (%d referencing INDs)\n", i+1, p.Table, p.ReferencingINDs)
	}
}
