package main

// The -json mode turns `go test -bench` output into a machine-readable
// trajectory file (BENCH_ci.json) and gates CI on it: compared against a
// committed baseline JSON, any benchmark slower by more than the
// tolerance fails the run. Tiny benchmarks sit below a noise floor and
// are never compared — with -benchtime 1x a sub-millisecond measurement
// is mostly scheduler noise.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// BenchFile is the persisted benchmark trajectory.
type BenchFile struct {
	// Schema identifies the format for future readers.
	Schema string `json:"schema"`
	// Go is the toolchain that produced the numbers.
	Go string `json:"go"`
	// Benchmarks maps benchmark name (without the "Benchmark" prefix
	// and -GOMAXPROCS suffix) to its measurement.
	Benchmarks map[string]BenchEntry `json:"benchmarks"`
}

// BenchEntry is one benchmark's measurement.
type BenchEntry struct {
	NsPerOp float64 `json:"ns_per_op"`
	Runs    int64   `json:"runs"`
	// Metrics holds the benchmark's custom b.ReportMetric values by unit
	// (e.g. "items/op", "skew-max/mean") plus the standard B/op and
	// allocs/op when present. Informational: regression gating compares
	// ns_per_op only, but the trajectory file preserves work counters and
	// shard-balance metrics for inspection.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// benchSchema versions the JSON format.
const benchSchema = "spider-bench/v1"

// benchLine matches standard `go test -bench` result lines, e.g.
//
//	BenchmarkTable2_UniProt_BruteForce-8   1   123456 ns/op   22.00 INDs
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([0-9.]+) ns/op(.*)$`)

// metricPair matches the trailing "value unit" metric pairs after ns/op,
// e.g. "22.00 INDs", "1.18 skew-max/mean", "1234 B/op".
var metricPair = regexp.MustCompile(`([0-9]+(?:\.[0-9]+)?) (\S+)`)

// parseBench reads `go test -bench` output into a BenchFile. Sub-benchmarks
// run under the same top-level name keep their full slash path.
func parseBench(r io.Reader) (*BenchFile, error) {
	out := &BenchFile{Schema: benchSchema, Go: runtime.Version(), Benchmarks: map[string]BenchEntry{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		name := strings.TrimPrefix(m[1], "Benchmark")
		runs, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad run count in %q: %w", sc.Text(), err)
		}
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			return nil, fmt.Errorf("bad ns/op in %q: %w", sc.Text(), err)
		}
		entry := BenchEntry{NsPerOp: ns, Runs: runs}
		for _, pair := range metricPair.FindAllStringSubmatch(m[4], -1) {
			v, err := strconv.ParseFloat(pair[1], 64)
			if err != nil {
				continue
			}
			if entry.Metrics == nil {
				entry.Metrics = map[string]float64{}
			}
			entry.Metrics[pair[2]] = v
		}
		out.Benchmarks[name] = entry
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark result lines found")
	}
	return out, nil
}

// regression is one benchmark slower than the baseline allows.
type regression struct {
	name          string
	base, current float64
	ratio         float64
}

// compareBench returns the regressions of current vs base: benchmarks
// above the noise floor on both sides whose time grew by more than
// tolerance (0.25 = 25%). Benchmarks present on only one side are
// reported to warn (renames must update the baseline) but never fail.
func compareBench(base, current *BenchFile, tolerance, floorNs float64, warn io.Writer) []regression {
	var regs []regression
	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		b := base.Benchmarks[name]
		c, ok := current.Benchmarks[name]
		if !ok {
			fmt.Fprintf(warn, "warning: benchmark %s in baseline but not in this run\n", name)
			continue
		}
		if b.NsPerOp < floorNs && c.NsPerOp < floorNs {
			// Below the noise floor on both sides: not comparable at
			// -benchtime 1x. A current value above the floor is always
			// compared — a benchmark whose baseline was fast must not be
			// able to regress past the floor unnoticed.
			continue
		}
		if c.NsPerOp > b.NsPerOp*(1+tolerance) {
			regs = append(regs, regression{name: name, base: b.NsPerOp, current: c.NsPerOp, ratio: c.NsPerOp / b.NsPerOp})
		}
	}
	for name := range current.Benchmarks {
		if _, ok := base.Benchmarks[name]; !ok {
			fmt.Fprintf(warn, "note: new benchmark %s not in baseline\n", name)
		}
	}
	return regs
}

// runBenchJSON implements the -json mode; it returns the process exit
// code.
func runBenchJSON(inPath, outPath, baselinePath string, tolerance, floorMs float64) int {
	in := io.Reader(os.Stdin)
	if inPath != "" && inPath != "-" {
		f, err := os.Open(inPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "indbench: %v\n", err)
			return 1
		}
		defer f.Close()
		in = f
	}
	current, err := parseBench(in)
	if err != nil {
		fmt.Fprintf(os.Stderr, "indbench: parse: %v\n", err)
		return 1
	}
	if outPath != "" {
		data, err := json.MarshalIndent(current, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "indbench: %v\n", err)
			return 1
		}
		if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "indbench: %v\n", err)
			return 1
		}
		fmt.Printf("wrote %s (%d benchmarks)\n", outPath, len(current.Benchmarks))
	}
	if baselinePath == "" {
		return 0
	}
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "indbench: baseline: %v\n", err)
		return 1
	}
	var base BenchFile
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Fprintf(os.Stderr, "indbench: baseline: %v\n", err)
		return 1
	}
	if base.Schema != benchSchema {
		fmt.Fprintf(os.Stderr, "indbench: baseline schema %q, want %q\n", base.Schema, benchSchema)
		return 1
	}
	regs := compareBench(&base, current, tolerance, floorMs*1e6, os.Stdout)
	if len(regs) == 0 {
		fmt.Printf("no regressions vs %s (tolerance %.0f%%, floor %.0fms)\n",
			baselinePath, tolerance*100, floorMs)
		return 0
	}
	fmt.Fprintf(os.Stderr, "%d benchmark regression(s) vs %s (tolerance %.0f%%):\n",
		len(regs), baselinePath, tolerance*100)
	for _, r := range regs {
		fmt.Fprintf(os.Stderr, "  %-60s %8.1fms -> %8.1fms  (%.2fx)\n",
			r.name, r.base/1e6, r.current/1e6, r.ratio)
	}
	return 1
}
