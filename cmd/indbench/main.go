// Command indbench regenerates every table and figure of the paper's
// evaluation on the synthetic paper-shaped datasets:
//
//	indbench -exp table1     # Table 1: SQL approaches (join, minus, not in)
//	indbench -exp table2     # Table 2: brute force, single pass and the
//	                         # modern spider-merge heap engine vs join
//	indbench -exp figure5    # Figure 5: items read vs number of attributes
//	                         # (brute force vs single pass vs spider-merge)
//	indbench -exp pruning    # Sec 4.1: max-value pretest
//	indbench -exp section5   # Sec 5: FK quality, accessions, primary relation
//	indbench -exp ablations  # single-pass overhead, block-wise, early stop
//	indbench -exp all        # everything
//
// -scale multiplies the dataset sizes (1.0 reproduces the default bench
// scale; the paper's absolute sizes are ~100x larger).
//
// The -json mode instead converts `go test -bench` output into the
// benchmark-trajectory JSON the CI pipeline gates on:
//
//	go test -bench . -benchtime 1x -run '^$' | \
//	  indbench -json -out BENCH_ci.json -baseline BENCH_baseline.json
//
// With -baseline it exits non-zero when any benchmark above the noise
// floor (-minms) regressed by more than -tolerance.
package main

import (
	"flag"
	"fmt"
	"os"

	"spider/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment: table1|table2|figure5|pruning|section5|ablations|all")
	seed := flag.Int64("seed", 42, "dataset generator seed")
	scale := flag.Float64("scale", 1.0, "multiplier on the default dataset scales")
	pdbTables := flag.Int("pdbtables", 39, "PDB table count (paper's second fraction: 39)")
	soft := flag.Float64("soft", 0.98, "softened accession-number threshold (section5)")
	jsonMode := flag.Bool("json", false, "convert `go test -bench` output to benchmark JSON instead of running experiments")
	jsonIn := flag.String("in", "-", "bench output to read in -json mode (- = stdin)")
	jsonOut := flag.String("out", "BENCH_ci.json", "JSON file to write in -json mode (empty = none)")
	baseline := flag.String("baseline", "", "baseline JSON to compare against in -json mode (empty = no gate)")
	tolerance := flag.Float64("tolerance", 0.25, "allowed slowdown vs baseline before failing (-json mode)")
	minMs := flag.Float64("minms", 50, "noise floor in milliseconds; faster benchmarks are not compared (-json mode)")
	flag.Parse()

	if *jsonMode {
		os.Exit(runBenchJSON(*jsonIn, *jsonOut, *baseline, *tolerance, *minMs))
	}

	base := experiments.Default()
	cfg := experiments.Config{
		Seed:         *seed,
		UniProtScale: base.UniProtScale * *scale,
		SCOPScale:    base.SCOPScale * *scale,
		PDBScale:     base.PDBScale * *scale,
		PDBTables:    *pdbTables,
	}

	run := func(name string) error {
		switch name {
		case "table1":
			rows, err := experiments.Table1(cfg)
			if err != nil {
				return err
			}
			experiments.PrintRows(os.Stdout, "Table 1: experimental results utilizing SQL", rows)
		case "table2":
			rows, err := experiments.Table2(cfg)
			if err != nil {
				return err
			}
			experiments.PrintRows(os.Stdout, "Table 2: approaches using order on data vs the SQL join approach", rows)
		case "figure5":
			points, err := experiments.Figure5(cfg, nil)
			if err != nil {
				return err
			}
			experiments.PrintFigure5(os.Stdout, points)
		case "pruning":
			var results []*experiments.PruningResult
			for _, ds := range []string{"uniprot", "scop", "pdb"} {
				r, err := experiments.Pruning(ds, cfg)
				if err != nil {
					return err
				}
				results = append(results, r)
			}
			experiments.PrintPruning(os.Stdout, results)
		case "section5":
			r, err := experiments.Section5(cfg, *soft)
			if err != nil {
				return err
			}
			experiments.PrintSection5(os.Stdout, r)
		case "ablations":
			r, err := experiments.Ablations(cfg)
			if err != nil {
				return err
			}
			experiments.PrintAblations(os.Stdout, r)
		default:
			return fmt.Errorf("unknown experiment %q", name)
		}
		return nil
	}

	names := []string{*exp}
	if *exp == "all" {
		names = []string{"table1", "table2", "figure5", "pruning", "section5", "ablations"}
	}
	for _, n := range names {
		if err := run(n); err != nil {
			fmt.Fprintf(os.Stderr, "indbench: %v\n", err)
			os.Exit(1)
		}
	}
}
