package main

import (
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: spider
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkTable2_UniProt_BruteForce-8   	       1	  84123456 ns/op	        22.00 INDs
BenchmarkModern_UniProt25/spider-merge-8         	       1	   7000000 ns/op
BenchmarkKMVShardPlan/planner=kmv-8    	       1	   1418055 ns/op	      1100 items/op	         1.175 skew-max/mean
BenchmarkTiny-8   	 1000000	      105.0 ns/op
PASS
ok  	spider	12.3s
`

func TestParseBench(t *testing.T) {
	f, err := parseBench(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Benchmarks) != 4 {
		t.Fatalf("parsed %d benchmarks, want 4", len(f.Benchmarks))
	}
	e, ok := f.Benchmarks["Table2_UniProt_BruteForce"]
	if !ok || e.NsPerOp != 84123456 || e.Runs != 1 {
		t.Fatalf("Table2 entry = %+v ok=%v", e, ok)
	}
	if e.Metrics["INDs"] != 22 {
		t.Fatalf("Table2 metrics = %v, want INDs=22", e.Metrics)
	}
	kmv := f.Benchmarks["KMVShardPlan/planner=kmv"]
	if kmv.Metrics["skew-max/mean"] != 1.175 || kmv.Metrics["items/op"] != 1100 {
		t.Fatalf("KMVShardPlan metrics = %v", kmv.Metrics)
	}
	if f.Benchmarks["Modern_UniProt25/spider-merge"].Metrics != nil {
		t.Fatal("metric map allocated for a line without custom metrics")
	}
	if _, ok := f.Benchmarks["Modern_UniProt25/spider-merge"]; !ok {
		t.Fatal("sub-benchmark path not preserved")
	}
	if e := f.Benchmarks["Tiny"]; e.NsPerOp != 105 || e.Runs != 1000000 {
		t.Fatalf("Tiny entry = %+v", e)
	}
	if _, err := parseBench(strings.NewReader("PASS\n")); err == nil {
		t.Fatal("empty bench output accepted")
	}
}

func TestCompareBench(t *testing.T) {
	mk := func(entries map[string]float64) *BenchFile {
		f := &BenchFile{Schema: benchSchema, Benchmarks: map[string]BenchEntry{}}
		for name, ns := range entries {
			f.Benchmarks[name] = BenchEntry{NsPerOp: ns, Runs: 1}
		}
		return f
	}
	base := mk(map[string]float64{
		"Slow":     100e6,
		"Stable":   200e6,
		"Noisy":    1e6,  // both sides below the 50ms floor: never compared
		"Exploded": 10e6, // below the floor in the baseline only
		"Removed":  100e6,
	})
	current := mk(map[string]float64{
		"Slow":     130e6, // +30%: regression at 25% tolerance
		"Stable":   220e6, // +10%: fine
		"Noisy":    40e6,  // still below floor: skipped
		"Exploded": 500e6, // fast benchmark regressed past the floor: must fail
		"New":      500e6,
	})
	var warn strings.Builder
	regs := compareBench(base, current, 0.25, 50e6, &warn)
	if len(regs) != 2 || regs[0].name != "Exploded" || regs[1].name != "Slow" {
		t.Fatalf("regressions = %+v, want Exploded and Slow", regs)
	}
	if regs[1].ratio < 1.29 || regs[1].ratio > 1.31 {
		t.Fatalf("ratio = %v", regs[1].ratio)
	}
	if !strings.Contains(warn.String(), "Removed") || !strings.Contains(warn.String(), "New") {
		t.Fatalf("warnings missing: %q", warn.String())
	}
	// Tightening the tolerance flags Stable too.
	if regs := compareBench(base, current, 0.05, 50e6, &warn); len(regs) != 3 {
		t.Fatalf("at 5%% tolerance got %d regressions, want 3", len(regs))
	}
}
