// Command valconvert converts sorted value files between the text
// encoding (escaped newline-separated values) and the columnar block
// encoding (front-coded blocks, checksums, embedded sections):
//
//	valconvert file.val                    # flip the detected encoding in place
//	valconvert -format block -dir export/  # convert a whole export directory
//	valconvert -verify -out b.val a.val    # convert to a new path, re-checked
//	valconvert -backend mem -verify a.val  # stage in memory, write nothing
//
// Sketch payloads move with the file: a .sketch sidecar becomes the
// embedded SKCH section on text→block, and the SKCH section becomes a
// sidecar on block→text. Embedded run metadata (RUNM) has no text
// representation and is dropped with a notice.
package main

import (
	"flag"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"strings"

	"spider/internal/blockfile"
	"spider/internal/store"
	"spider/internal/valfile"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "valconvert: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("valconvert", flag.ContinueOnError)
	formatName := fs.String("format", "", "target encoding: text|block (default: the opposite of the source)")
	outPath := fs.String("out", "", "output path (single file only; default: replace the source in place)")
	dir := fs.String("dir", "", "convert every .val file under this directory in place")
	verify := fs.Bool("verify", false, "re-read source and output and compare value streams before replacing anything")
	backendName := fs.String("backend", "fs", "staging backend: fs writes the converted file, mem stages it in memory and writes nothing (dry run)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var stageInMem bool
	switch *backendName {
	case "", "fs":
	case "mem":
		stageInMem = true
	default:
		return fmt.Errorf("unknown backend %q (want fs or mem)", *backendName)
	}

	var target valfile.Format
	haveTarget := *formatName != ""
	if haveTarget {
		var err error
		target, err = valfile.ParseFormat(*formatName)
		if err != nil {
			return err
		}
	}

	switch {
	case *dir != "":
		if *outPath != "" {
			return fmt.Errorf("-out applies to single files, not -dir")
		}
		if fs.NArg() > 0 {
			return fmt.Errorf("use either -dir or file arguments, not both")
		}
		if !haveTarget {
			return fmt.Errorf("-dir requires an explicit -format")
		}
		return convertDir(*dir, target, *verify, stageInMem, out)
	case fs.NArg() == 0:
		return fmt.Errorf("no input files; usage: valconvert [-format text|block] [-out PATH] [-verify] [-backend fs|mem] FILE... | -dir DIR")
	case *outPath != "" && fs.NArg() > 1:
		return fmt.Errorf("-out applies to a single input file, got %d", fs.NArg())
	}

	for _, src := range fs.Args() {
		dst := *outPath
		if dst == "" {
			dst = src
		}
		tgt := target
		if !haveTarget {
			detected, err := valfile.DetectFormat(src)
			if err != nil {
				return err
			}
			tgt = flip(detected)
		}
		if err := convertFile(src, dst, tgt, *verify, stageInMem, out); err != nil {
			return fmt.Errorf("%s: %w", src, err)
		}
	}
	return nil
}

// flip returns the other encoding.
func flip(f valfile.Format) valfile.Format {
	if f == valfile.FormatText {
		return valfile.FormatBlock
	}
	return valfile.FormatText
}

// convertDir converts every .val file under dir (recursively) to the
// target format in place. Files already in the target format are left
// untouched.
func convertDir(dir string, target valfile.Format, verify, stageInMem bool, out io.Writer) error {
	return filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".val") {
			return err
		}
		have, err := valfile.DetectFormat(path)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		if have == target {
			return nil
		}
		if err := convertFile(path, path, target, verify, stageInMem, out); err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		return nil
	})
}

// convertFile streams src into a freshly written dst in the target
// format, migrating sketch payloads across the sidecar/section boundary.
// The output lands in a temp file first and replaces dst only after it
// is complete (and, with verify, proven value-identical to the source).
// With stageInMem the converted value set only ever exists in an
// in-memory dataset: the pipeline (including verify) runs end to end,
// then reports and discards — nothing on disk changes.
func convertFile(src, dst string, target valfile.Format, verify, stageInMem bool, out io.Writer) error {
	source, err := valfile.DetectFormat(src)
	if err != nil {
		return err
	}

	if stageInMem {
		mem := store.NewMem()
		w, err := mem.Create(dst)
		if err != nil {
			return err
		}
		n, err := copyValues(src, w)
		if err != nil {
			w.Close()
			return err
		}
		// The mem backend carries any section, so nothing is dropped and
		// no sidecar is needed: every payload lands in the section map.
		if err := migrateSections(src, source, w, valfile.FormatBlock, "", out); err != nil {
			w.Close()
			return err
		}
		if err := w.Close(); err != nil {
			return err
		}
		if verify {
			ra, err := store.OpenFile(src, nil)
			if err != nil {
				return err
			}
			defer ra.Close()
			rb, err := mem.Open(dst, nil)
			if err != nil {
				return err
			}
			defer rb.Close()
			if err := compareCursors(ra, rb); err != nil {
				return fmt.Errorf("verify: %w", err)
			}
		}
		fmt.Fprintf(out, "%s: %s → %s (%d values, staged in memory, not written)\n", dst, source, target, n)
		return nil
	}

	tmp := dst + ".convert.tmp"
	defer os.Remove(tmp)
	w, err := store.CreateFile(tmp, target)
	if err != nil {
		return err
	}
	n, err := copyValues(src, w)
	if err != nil {
		w.Close()
		return err
	}
	if err := migrateSections(src, source, w, target, dst, out); err != nil {
		w.Close()
		return err
	}
	if err := w.Close(); err != nil {
		return err
	}

	if verify {
		if err := compareValues(src, tmp); err != nil {
			return fmt.Errorf("verify: %w", err)
		}
	}
	if err := os.Rename(tmp, dst); err != nil {
		return err
	}
	// In-place text→block: the sidecar's payload now lives inside the
	// block file; leaving it would shadow the embedded copy.
	if src == dst && source == valfile.FormatText && target == valfile.FormatBlock {
		os.Remove(src + ".sketch")
	}
	fmt.Fprintf(out, "%s: %s → %s (%d values)\n", dst, source, target, n)
	return nil
}

// copyValues streams every value of src into w.
func copyValues(src string, w store.ValueWriter) (int, error) {
	r, err := store.OpenFile(src, nil)
	if err != nil {
		return 0, err
	}
	defer r.Close()
	for {
		v, ok := r.Next()
		if !ok {
			break
		}
		if err := w.Append(v); err != nil {
			return 0, err
		}
	}
	return w.Len(), r.Err()
}

// migrateSections carries sketch payloads across the conversion: a
// sidecar file feeds the SKCH section on text→block, embedded sections
// feed the block output or (SKCH only) a sidecar on block→text.
func migrateSections(src string, source valfile.Format, w store.ValueWriter, target valfile.Format, dst string, out io.Writer) error {
	if source == valfile.FormatText {
		if target != valfile.FormatBlock {
			return nil
		}
		data, err := os.ReadFile(src + ".sketch")
		if os.IsNotExist(err) {
			return nil
		}
		if err != nil {
			return err
		}
		return w.SetSection(valfile.SketchSection, data)
	}
	br, err := blockfile.Open(src)
	if err != nil {
		return err
	}
	defer br.Close()
	for _, tag := range br.Sections() {
		data, _, err := br.Section(tag)
		if err != nil {
			return err
		}
		switch {
		case target == valfile.FormatBlock:
			if err := w.SetSection(tag, data); err != nil {
				return err
			}
		case tag == valfile.SketchSection:
			if err := os.WriteFile(dst+".sketch", data, 0o644); err != nil {
				return err
			}
		default:
			fmt.Fprintf(out, "%s: dropping %s section (no text representation)\n", src, tag)
		}
	}
	return nil
}

// compareValues re-reads both files and fails on the first diverging
// value, extra value, or missing value.
func compareValues(a, b string) error {
	ra, err := store.OpenFile(a, nil)
	if err != nil {
		return err
	}
	defer ra.Close()
	rb, err := store.OpenFile(b, nil)
	if err != nil {
		return err
	}
	defer rb.Close()
	return compareCursors(ra, rb)
}

// compareCursors drains two cursors in lockstep and fails on the first
// divergence.
func compareCursors(ra, rb store.Cursor) error {
	for i := 0; ; i++ {
		va, oka := ra.Next()
		vb, okb := rb.Next()
		if oka != okb {
			return fmt.Errorf("value count mismatch at index %d", i)
		}
		if !oka {
			break
		}
		if va != vb {
			return fmt.Errorf("value %d differs: %q vs %q", i, va, vb)
		}
	}
	if err := ra.Err(); err != nil {
		return err
	}
	return rb.Err()
}
