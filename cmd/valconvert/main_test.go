package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"spider/internal/valfile"
)

func writeText(t *testing.T, path string, values []string) {
	t.Helper()
	if _, err := valfile.WriteAll(path, values); err != nil {
		t.Fatal(err)
	}
}

func readAll(t *testing.T, path string) []string {
	t.Helper()
	vals, err := valfile.ReadAll(path)
	if err != nil {
		t.Fatal(err)
	}
	return vals
}

func mustFormat(t *testing.T, path string, want valfile.Format) {
	t.Helper()
	got, err := valfile.DetectFormat(path)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("DetectFormat(%s) = %v, want %v", path, got, want)
	}
}

func TestRoundtripInPlace(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "a.val")
	values := []string{"", "a", "abc\nwith\nnewlines", "abd", "b\x00nul"}
	writeText(t, path, values)

	var out strings.Builder
	// text → block (default flips the detected format).
	if err := run([]string{"-verify", path}, &out); err != nil {
		t.Fatal(err)
	}
	mustFormat(t, path, valfile.FormatBlock)
	if got := readAll(t, path); !equal(got, values) {
		t.Fatalf("after text→block: %q", got)
	}
	// block → text.
	if err := run([]string{"-verify", path}, &out); err != nil {
		t.Fatal(err)
	}
	mustFormat(t, path, valfile.FormatText)
	if got := readAll(t, path); !equal(got, values) {
		t.Fatalf("after block→text: %q", got)
	}
}

func TestOutPath(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "src.val")
	dst := filepath.Join(dir, "dst.val")
	values := []string{"x", "y", "z"}
	writeText(t, src, values)

	var out strings.Builder
	if err := run([]string{"-format", "block", "-out", dst, "-verify", src}, &out); err != nil {
		t.Fatal(err)
	}
	mustFormat(t, src, valfile.FormatText) // source untouched
	mustFormat(t, dst, valfile.FormatBlock)
	if got := readAll(t, dst); !equal(got, values) {
		t.Fatalf("dst = %q", got)
	}
}

func TestSketchSidecarMigration(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "a.val")
	writeText(t, path, []string{"a", "b"})
	payload := []byte("sketch-payload")
	if err := os.WriteFile(path+".sketch", payload, 0o644); err != nil {
		t.Fatal(err)
	}

	var out strings.Builder
	// text → block: sidecar becomes the embedded section, sidecar removed.
	if err := run([]string{"-format", "block", path}, &out); err != nil {
		t.Fatal(err)
	}
	data, ok, err := valfile.ReadSection(path, valfile.SketchSection)
	if err != nil || !ok || !bytes.Equal(data, payload) {
		t.Fatalf("embedded sketch = %q ok=%v err=%v", data, ok, err)
	}
	if _, err := os.Stat(path + ".sketch"); !os.IsNotExist(err) {
		t.Fatalf("sidecar should be removed after in-place embed, stat err = %v", err)
	}

	// block → text: section becomes the sidecar again.
	if err := run([]string{"-format", "text", path}, &out); err != nil {
		t.Fatal(err)
	}
	side, err := os.ReadFile(path + ".sketch")
	if err != nil || !bytes.Equal(side, payload) {
		t.Fatalf("sidecar = %q err=%v", side, err)
	}
}

func TestDirMode(t *testing.T) {
	dir := t.TempDir()
	var paths []string
	for _, name := range []string{"a.val", "b.val", filepath.Join("sub", "c.val")} {
		p := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		writeText(t, p, []string{"v1", "v2"})
		paths = append(paths, p)
	}
	// One file already in the target format must be left alone.
	pre := filepath.Join(dir, "pre.val")
	if _, err := valfile.WriteAllFormat(pre, []string{"w"}, valfile.FormatBlock); err != nil {
		t.Fatal(err)
	}
	other := filepath.Join(dir, "notes.txt")
	if err := os.WriteFile(other, []byte("not a value file"), 0o644); err != nil {
		t.Fatal(err)
	}

	var out strings.Builder
	if err := run([]string{"-format", "block", "-verify", "-dir", dir}, &out); err != nil {
		t.Fatal(err)
	}
	for _, p := range paths {
		mustFormat(t, p, valfile.FormatBlock)
	}
	mustFormat(t, pre, valfile.FormatBlock)
	if data, err := os.ReadFile(other); err != nil || string(data) != "not a value file" {
		t.Fatalf("non-.val file touched: %q err=%v", data, err)
	}
	if strings.Contains(out.String(), "pre.val") {
		t.Fatalf("already-converted file reported: %s", out.String())
	}
}

func TestBadArgs(t *testing.T) {
	var out strings.Builder
	for _, args := range [][]string{
		{},                              // no inputs
		{"-format", "gzip", "x.val"},    // unknown format
		{"-dir", "d", "x.val"},          // dir + files
		{"-dir", "d"},                   // dir without format
		{"-out", "o", "a.val", "b.val"}, // out with multiple inputs
		{"-dir", "d", "-out", "o"},      // dir + out
	} {
		if err := run(args, &out); err == nil {
			t.Errorf("run(%q) succeeded, want error", args)
		}
	}
}

func equal(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
