// Command indlint is the repo's invariant multichecker: five
// type-aware analyzers that mechanically enforce the merge-engine
// contracts (see internal/analyzers). It runs two ways:
//
//	go run ./cmd/indlint ./...                   # standalone source mode
//	go vet -vettool=$(command -v indlint) ./...  # as a vet tool
//
// Individual analyzers toggle with -cursorclose=false etc.; findings are
// suppressed only by a justified //lint:indlint-ignore <reason> comment.
package main

import (
	"spider/internal/analyzers"
	"spider/internal/analyzers/framework"
)

func main() {
	framework.Main(analyzers.All()...)
}
