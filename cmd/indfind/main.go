// Command indfind discovers unary inclusion dependencies in a directory
// of CSV files or in one of the built-in paper-shaped datasets:
//
//	indfind -csv ./data                      # profile a CSV directory
//	indfind -data uniprot -algo single-pass  # built-in dataset
//	indfind -data pdb -scale 0.1 -pretest    # with Sec 4.1 pruning
//
// Each CSV file becomes one table (header row + data rows, types
// inferred). The discovered INDs are printed one per line, followed by
// run statistics.
package main

import (
	"flag"
	"fmt"
	"os"

	"spider"
)

func main() {
	csvDir := flag.String("csv", "", "directory of .csv files to profile")
	data := flag.String("data", "", "built-in dataset: uniprot|scop|pdb")
	algo := flag.String("algo", "brute-force",
		"algorithm: brute-force|brute-force-parallel|single-pass|single-pass-blocked|"+
			"spider-merge|sql-join|sql-minus|sql-not-in|in-memory|demarchi|bell-brockhausen")
	scale := flag.Float64("scale", 0.25, "built-in dataset scale")
	seed := flag.Int64("seed", 42, "built-in dataset seed")
	pretest := flag.Bool("pretest", false, "enable the Sec 4.1 max-value pretest")
	transitivity := flag.Bool("transitivity", false, "enable transitivity inference (brute force)")
	depBlock := flag.Int("depblock", 64, "dependent block size (single-pass-blocked)")
	refBlock := flag.Int("refblock", 0, "referenced block size (single-pass-blocked; 0 = all)")
	workers := flag.Int("workers", 0, "worker pool size (brute-force-parallel; 0 = GOMAXPROCS)")
	exportWorkers := flag.Int("exportworkers", 0, "attribute export workers (0 = GOMAXPROCS, 1 = sequential)")
	streaming := flag.Bool("streaming", false, "stream values from sort spill runs, skipping value files (spider-merge)")
	shards := flag.Int("shards", 0, "value-range shards merged concurrently (spider-merge; 0/1 = single merge)")
	mergeWorkers := flag.Int("mergeworkers", 0, "shard worker pool size (0 = min(shards, GOMAXPROCS))")
	shardPlan := flag.String("shardplan", "auto", "shard boundary planner: auto|minmax|kmv (sharded spider-merge)")
	partial := flag.Float64("partial", 0, "discover partial INDs at this threshold σ in (0, 1] instead of exact INDs")
	nary := flag.Int("nary", 0, "also discover n-ary INDs up to this arity (0 = off)")
	narySequential := flag.Bool("nary-sequential", false, "disable overlapped n-ary levels (spider-merge; run one level at a time)")
	embedded := flag.Bool("embedded", false, "also discover embedded INDs (transformed values; -algo spider-merge selects the merge-front engine)")
	workDir := flag.String("workdir", "", "directory for sorted value files (temporary when empty)")
	backendName := flag.String("backend", "fs", "storage backend for extracted value sets: fs|mem|snapshot (mem/snapshot never write value files)")
	formatName := flag.String("format", "text", "value-file encoding: text|block (block = columnar binary with front coding)")
	sketchOn := flag.Bool("sketch", false, "enable the sketch pre-filter (min-hash + bloom; sound on the exact path)")
	sketchContainment := flag.Float64("sketch-containment", 0,
		"also prune candidates with estimated containment below this bound (approximate; 0 = off on the exact path, σ on the partial path)")
	sketchK := flag.Int("sketch-k", 0, "min-hash signature size (0 = default 128)")
	sketchBloomBits := flag.Int("sketch-bloombits", 0, "bloom bits per distinct value (0 = default 10)")
	out := flag.String("out", "", "write the result set (attribute catalog + verified INDs) to this JSON file, servable by indserved")
	flag.Parse()

	db, err := openDatabase(*csvDir, *data, *scale, *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "indfind: %v\n", err)
		os.Exit(1)
	}

	algorithm, err := parseAlgorithm(*algo)
	if err != nil {
		fmt.Fprintf(os.Stderr, "indfind: %v\n", err)
		os.Exit(1)
	}

	planner, err := parsePlanner(*shardPlan)
	if err != nil {
		fmt.Fprintf(os.Stderr, "indfind: %v\n", err)
		os.Exit(1)
	}

	format, err := spider.ParseFormat(*formatName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "indfind: %v\n", err)
		os.Exit(1)
	}

	backend, err := spider.ParseBackend(*backendName, *workDir, format)
	if err != nil {
		fmt.Fprintf(os.Stderr, "indfind: %v\n", err)
		os.Exit(1)
	}

	if *out != "" && *partial > 0 {
		fmt.Fprintln(os.Stderr, "indfind: -out persists exact result sets only (not -partial runs)")
		os.Exit(1)
	}

	if *partial > 0 {
		partials, stats, err := spider.FindPartialINDs(db, spider.PartialOptions{
			Threshold:               *partial,
			WorkDir:                 *workDir,
			Algorithm:               algorithm,
			Streaming:               *streaming,
			Shards:                  *shards,
			MergeWorkers:            *mergeWorkers,
			Planner:                 planner,
			ExportWorkers:           *exportWorkers,
			SketchPrefilter:         *sketchOn,
			SketchMinContainment:    *sketchContainment,
			SketchK:                 *sketchK,
			SketchBloomBitsPerValue: *sketchBloomBits,
			Format:                  format,
			Store:                   backend,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "indfind: %v\n", err)
			os.Exit(1)
		}
		for _, p := range partials {
			fmt.Println(p)
		}
		name := fmt.Sprintf("partial σ=%g %s", *partial, algorithm)
		if *shards > 1 {
			name = fmt.Sprintf("%s x%d shards", name, *shards)
		}
		printStats(stats, name)
		return
	}

	res, err := spider.FindINDs(db, spider.Options{
		Algorithm:               algorithm,
		WorkDir:                 *workDir,
		MaxValuePretest:         *pretest,
		Transitivity:            *transitivity,
		DepBlock:                *depBlock,
		RefBlock:                *refBlock,
		Workers:                 *workers,
		ExportWorkers:           *exportWorkers,
		Streaming:               *streaming,
		Shards:                  *shards,
		MergeWorkers:            *mergeWorkers,
		Planner:                 planner,
		SketchPrefilter:         *sketchOn,
		SketchMinContainment:    *sketchContainment,
		SketchK:                 *sketchK,
		SketchBloomBitsPerValue: *sketchBloomBits,
		Format:                  format,
		Store:                   backend,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "indfind: %v\n", err)
		os.Exit(1)
	}
	for _, d := range res.INDs {
		fmt.Println(d)
	}
	if *out != "" {
		if err := res.SaveResultSet(*out); err != nil {
			fmt.Fprintf(os.Stderr, "indfind: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "indfind: result set written to %s\n", *out)
	}
	name := algorithm.String()
	if *shards > 1 && algorithm == spider.SpiderMerge {
		name = fmt.Sprintf("%s x%d shards", name, *shards)
	}
	printStats(res.Stats, name)

	if *nary >= 2 {
		// Mirror the -partial wiring: -algo spider-merge selects the
		// merge-backed n-ary engine; every other algorithm keeps the
		// in-memory tuple-set reference.
		naryAlgo := spider.InMemory
		if algorithm == spider.SpiderMerge {
			naryAlgo = spider.SpiderMerge
		}
		naryOpts := spider.NaryOptions{
			MaxArity:      *nary,
			Algorithm:     naryAlgo,
			WorkDir:       *workDir,
			ExportWorkers: *exportWorkers,
			Format:        format,
			Store:         backend,
			// Per-level progress arrives as each level finishes, not after
			// the whole search: long levels report while later ones run.
			LevelProgress: func(p spider.NaryLevelProgress) {
				fmt.Fprintf(os.Stderr, "n-ary arity %d: %d candidates, %d satisfied, %d items read, %s\n",
					p.Arity, p.Candidates, p.Satisfied, p.ItemsRead, p.Duration.Round(1e6))
			},
		}
		if naryAlgo == spider.SpiderMerge {
			naryOpts.Streaming = *streaming
			naryOpts.Shards = *shards
			naryOpts.MergeWorkers = *mergeWorkers
			naryOpts.SequentialLevels = *narySequential
		}
		naryINDs, naryStats, err := spider.FindNaryINDs(db, naryOpts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "indfind: n-ary: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("\nn-ary INDs (arity 2..%d): %d\n", *nary, len(naryINDs))
		for _, d := range naryINDs {
			fmt.Printf("  %s\n", d)
		}
		if naryStats.Truncated {
			fmt.Printf("  truncated at arity %d (candidate cap); lower-arity results are complete\n",
				naryStats.StoppedAtArity)
		}
		name := fmt.Sprintf("n-ary ≤%d %s", *nary, naryAlgo)
		if *shards > 1 && naryAlgo == spider.SpiderMerge {
			name = fmt.Sprintf("%s x%d shards", name, *shards)
		}
		printStats(naryStats.Stats, name)
	}

	if *embedded {
		embAlgo := spider.BruteForce
		if algorithm == spider.SpiderMerge {
			embAlgo = spider.SpiderMerge
		}
		embOpts := spider.EmbeddedOptions{
			Algorithm: embAlgo,
			WorkDir:   *workDir,
			Format:    format,
			Store:     backend,
		}
		if embAlgo == spider.SpiderMerge {
			embOpts.Shards = *shards
			embOpts.MergeWorkers = *mergeWorkers
			embOpts.Planner = planner
		}
		embINDs, embStats, err := spider.FindEmbeddedINDsWith(db, embOpts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "indfind: embedded: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("\nembedded INDs: %d\n", len(embINDs))
		for _, d := range embINDs {
			fmt.Printf("  %s\n", d)
		}
		name := fmt.Sprintf("embedded %s", embAlgo)
		if *shards > 1 && embAlgo == spider.SpiderMerge {
			name = fmt.Sprintf("%s x%d shards", name, *shards)
		}
		printStats(embStats, name)
	}
}

// printStats writes the run summary line.
func printStats(st spider.Stats, approach string) {
	fmt.Printf("\n%d candidates, %d satisfied INDs, %d items read, %d comparisons, "+
		"%d max open files, %d events, %s (%s)\n",
		st.Candidates, st.Satisfied, st.ItemsRead, st.Comparisons,
		st.MaxOpenFiles, st.Events, st.Duration.Round(1e6), approach)
	if st.BytesRead > 0 {
		fmt.Printf("value-file I/O: %d bytes read\n", st.BytesRead)
	}
	if st.CandidatesPruned > 0 || st.SketchBytes > 0 {
		fmt.Printf("sketch pre-filter: %d candidates pruned, %d sketch bytes\n",
			st.CandidatesPruned, st.SketchBytes)
	}
	if len(st.ShardItemsRead) > 1 {
		var total, max int64
		for _, n := range st.ShardItemsRead {
			total += n
			if n > max {
				max = n
			}
		}
		mean := float64(total) / float64(len(st.ShardItemsRead))
		skew := 0.0
		if mean > 0 {
			skew = float64(max) / mean
		}
		fmt.Printf("shard plan: %s planner, per-shard items %v, skew max/mean %.2f\n",
			st.ShardPlanner, st.ShardItemsRead, skew)
	}
	if st.ShardPlanFallback != "" {
		fmt.Printf("shard plan fallback: %s\n", st.ShardPlanFallback)
	}
}

func parsePlanner(s string) (spider.ShardPlanner, error) {
	for _, p := range []spider.ShardPlanner{
		spider.PlannerAuto, spider.PlannerMinMax, spider.PlannerKMV,
	} {
		if p.String() == s {
			return p, nil
		}
	}
	return 0, fmt.Errorf("unknown shard planner %q (auto|minmax|kmv)", s)
}

func openDatabase(csvDir, data string, scale float64, seed int64) (*spider.Database, error) {
	switch {
	case csvDir != "" && data != "":
		return nil, fmt.Errorf("use either -csv or -data, not both")
	case csvDir != "":
		return spider.LoadCSVDir("csv", csvDir)
	case data == "uniprot":
		return spider.GenerateUniProt(spider.DatasetConfig{Seed: seed, Scale: scale}), nil
	case data == "scop":
		return spider.GenerateSCOP(spider.DatasetConfig{Seed: seed, Scale: scale}), nil
	case data == "pdb":
		return spider.GeneratePDB(spider.DatasetConfig{Seed: seed, Scale: scale}), nil
	case data != "":
		return nil, fmt.Errorf("unknown dataset %q", data)
	default:
		return nil, fmt.Errorf("specify -csv DIR or -data uniprot|scop|pdb")
	}
}

func parseAlgorithm(s string) (spider.Algorithm, error) {
	for _, a := range []spider.Algorithm{
		spider.BruteForce, spider.BruteForceParallel,
		spider.SinglePass, spider.SinglePassBlocked, spider.SpiderMerge,
		spider.SQLJoin, spider.SQLMinus, spider.SQLNotIn,
		spider.InMemory, spider.DeMarchiBaseline, spider.BellBrockhausenBaseline,
	} {
		if a.String() == s {
			return a, nil
		}
	}
	return 0, fmt.Errorf("unknown algorithm %q (run with -h for the full menu)", s)
}
