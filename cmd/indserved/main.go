// Command indserved serves discovered inclusion dependencies — and the
// value sets and sketches behind them — over HTTP, without re-running
// discovery:
//
//	indfind -csv ./data -algo spider-merge -sketch -workdir ./run -out ./run/INDS.json
//	indserved -addr 127.0.0.1:8080 -dataset mydata=./run
//
// Each -dataset names a directory of exported value files (text or
// block encoding, auto-detected) holding the result set the batch run
// wrote (INDS.json by default; override per dataset with -inds). The
// daemon stages everything into immutable in-memory snapshots at
// startup and answers:
//
//	GET  /healthz        liveness + current generation
//	GET  /metrics        per-endpoint counters, cache and snapshot stats
//	GET  /v1/datasets    loaded datasets
//	GET  /v1/attrs       one dataset's attribute catalog
//	GET  /v1/member      value-membership probe (bloom first, then cursor)
//	GET  /v1/containment sketch containment estimate for any attribute pair
//	GET  /v1/inds        lookup/filter over the discovered INDs
//	GET/POST /v1/verify  on-demand re-verification through a merge engine
//	POST /v1/reload      atomic snapshot swap (also on SIGHUP)
//
// Reload re-reads every configured dataset from disk into a fresh
// generation and swaps one pointer; requests in flight finish on the
// generation they started on. SIGTERM/SIGINT drain in-flight requests
// before exiting.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"spider/internal/serve"
)

// datasetFlags collects repeatable -dataset and -inds flags.
type datasetFlags struct {
	specs []serve.DatasetSpec
}

func (d *datasetFlags) String() string {
	names := make([]string, 0, len(d.specs))
	for _, sp := range d.specs {
		names = append(names, sp.Name)
	}
	return strings.Join(names, ",")
}

// Set accepts "name=dir" or a bare directory (named by its base name).
func (d *datasetFlags) Set(v string) error {
	name, dir, ok := strings.Cut(v, "=")
	if !ok {
		d.specs = append(d.specs, serve.DatasetSpec{Dir: v})
		return nil
	}
	if name == "" || dir == "" {
		return fmt.Errorf("want name=dir, got %q", v)
	}
	d.specs = append(d.specs, serve.DatasetSpec{Name: name, Dir: dir})
	return nil
}

// indsFlags collects per-dataset result-set overrides ("name=path").
type indsFlags struct {
	paths map[string]string
}

func (f *indsFlags) String() string { return "" }

func (f *indsFlags) Set(v string) error {
	name, path, ok := strings.Cut(v, "=")
	if !ok || name == "" || path == "" {
		return fmt.Errorf("want name=path, got %q", v)
	}
	if f.paths == nil {
		f.paths = map[string]string{}
	}
	f.paths[name] = path
	return nil
}

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address (use :0 for an ephemeral port)")
	var datasets datasetFlags
	flag.Var(&datasets, "dataset", "dataset to serve, as name=dir or a bare dir (repeatable)")
	var inds indsFlags
	flag.Var(&inds, "inds", "result-set path override, as name=path (repeatable; default DIR/INDS.json)")
	preload := flag.Bool("preload", false, "fault every value set into the snapshot cache at load time")
	cacheSize := flag.Int("cache", serve.DefaultCacheSize, "response cache entries per generation (negative disables)")
	shutdownTimeout := flag.Duration("shutdown-timeout", 30*time.Second, "grace period for in-flight requests on SIGTERM/SIGINT")
	flag.Parse()

	if len(datasets.specs) == 0 {
		fmt.Fprintln(os.Stderr, "indserved: no datasets (use -dataset name=dir; run indfind with -out first)")
		os.Exit(2)
	}
	for i := range datasets.specs {
		sp := &datasets.specs[i]
		if path, ok := inds.paths[sp.Name]; ok {
			sp.Results = path
		}
		sp.Preload = *preload
	}
	for name := range inds.paths {
		found := false
		for _, sp := range datasets.specs {
			if sp.Name == name {
				found = true
				break
			}
		}
		if !found {
			fmt.Fprintf(os.Stderr, "indserved: -inds %s=... names no -dataset\n", name)
			os.Exit(2)
		}
	}

	srv, err := serve.New(serve.Config{Specs: datasets.specs, CacheSize: *cacheSize})
	if err != nil {
		fmt.Fprintf(os.Stderr, "indserved: %v\n", err)
		os.Exit(1)
	}
	st := srv.State()
	fmt.Fprintf(os.Stderr, "indserved: loaded %d dataset(s): %s\n",
		len(st.Names()), strings.Join(st.Names(), ", "))

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "indserved: %v\n", err)
		os.Exit(1)
	}
	// The parseable line smoke tests and scripts wait for.
	fmt.Printf("indserved: listening on http://%s\n", ln.Addr())

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGHUP, syscall.SIGINT, syscall.SIGTERM)
	for {
		select {
		case err := <-serveErr:
			// The listener died outside a requested shutdown.
			fmt.Fprintf(os.Stderr, "indserved: %v\n", err)
			os.Exit(1)
		case sig := <-sigs:
			if sig == syscall.SIGHUP {
				next, err := srv.Reload()
				if err != nil {
					// The old generation keeps serving; reload failure is
					// an operator problem, not an outage.
					fmt.Fprintf(os.Stderr, "indserved: %v\n", err)
					continue
				}
				fmt.Fprintf(os.Stderr, "indserved: reloaded, now serving generation %d\n", next.Generation)
				continue
			}
			ctx, cancel := context.WithTimeout(context.Background(), *shutdownTimeout)
			err := srv.Shutdown(ctx)
			cancel()
			if err != nil {
				fmt.Fprintf(os.Stderr, "indserved: shutdown: %v\n", err)
				os.Exit(1)
			}
			<-serveErr // always http.ErrServerClosed after a clean Shutdown
			fmt.Println("indserved: shutdown complete")
			return
		}
	}
}
