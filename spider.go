// Package spider discovers unary inclusion dependencies (INDs) in
// relational data for schema discovery, reproducing Bauckmann, Leser and
// Naumann: "Efficiently Computing Inclusion Dependencies for Schema
// Discovery" (ICDE 2006).
//
// An IND a ⊆ b holds when every value of attribute a also occurs in
// attribute b; satisfied INDs are strong foreign-key guesses for
// undocumented schemas. The package offers the paper's five approaches —
// three SQL statements executed by an embedded mini SQL engine (join,
// minus, not-in) and two database-external algorithms over sorted distinct
// value files (brute force and single pass) — plus the Sec 4 pruning
// heuristics, the Sec 4.2 block-wise single pass, and the Sec 5 schema
// discovery heuristics (foreign-key evaluation, accession-number
// candidates, primary relation, and the five-step Aladin pipeline).
// Beyond the paper it adds modern extensions: a parallel brute force, an
// in-memory baseline, and SpiderMerge — a k-way heap merge over streaming
// value cursors that keeps the single-pass I/O optimum without its
// synchronisation overhead, optionally consuming external-sort spill runs
// directly (Options.Streaming) with parallel attribute export.
//
// Quick start:
//
//	db := spider.NewDatabase("demo")
//	db.AddTable("parent", []string{"id", "code"}, [][]string{{"1", "a"}, {"2", "b"}})
//	db.AddTable("child", []string{"pid"}, [][]string{{"1"}, {"1"}, {"2"}})
//	res, err := spider.FindINDs(db, spider.Options{})
//	// res.INDs == [child.pid ⊆ parent.id]
package spider

import (
	"fmt"
	"os"
	"time"

	"spider/internal/datagen"
	"spider/internal/extsort"
	"spider/internal/ind"
	"spider/internal/relstore"
	"spider/internal/sketch"
	"spider/internal/store"
	"spider/internal/valfile"
	"spider/internal/value"
)

// ColumnRef names a column as table.column.
type ColumnRef struct {
	Table  string
	Column string
}

// String renders the reference in the paper's notation.
func (r ColumnRef) String() string { return r.Table + "." + r.Column }

// IND is a satisfied inclusion dependency: every value of Dep occurs in
// Ref.
type IND struct {
	Dep, Ref ColumnRef
}

// String renders the IND in the paper's a ⊆ b notation.
func (d IND) String() string { return fmt.Sprintf("%s ⊆ %s", d.Dep, d.Ref) }

// Algorithm selects the IND verification strategy.
type Algorithm int

const (
	// BruteForce tests candidates one at a time over sorted value files
	// (paper Sec 3.1) — the paper's fastest variant.
	BruteForce Algorithm = iota
	// SinglePass tests all candidates in parallel, reading every value
	// file exactly once (paper Sec 3.2) — the most I/O-efficient variant.
	SinglePass
	// SinglePassBlocked is the Sec 4.2 extension bounding open files.
	SinglePassBlocked
	// SQLJoin, SQLMinus and SQLNotIn run one SQL statement per candidate
	// through the embedded engine (paper Sec 2, Figures 2-4).
	SQLJoin
	// SQLMinus is the Figure 3 MINUS statement.
	SQLMinus
	// SQLNotIn is the Figure 4 NOT IN statement.
	SQLNotIn
	// InMemory verifies candidates against in-memory hash sets; not part
	// of the paper, provided as a modern baseline for data that fits in
	// RAM.
	InMemory
	// DeMarchiBaseline is the related-work comparator of Sec 6 (De
	// Marchi, Lopes, Petit; EDBT 2002): preprocess an inverted index
	// value → containing attributes, then refute candidates in one sweep.
	DeMarchiBaseline
	// BellBrockhausenBaseline is the Sec 6 comparator of Bell &
	// Brockhausen (1995): SQL join statements with datatype and min/max
	// constraints plus transitivity inference. It applies its own
	// pretests regardless of Options.
	BellBrockhausenBaseline
	// BruteForceParallel runs Algorithm 1 on a worker pool — a modern
	// extension beyond the paper's single-threaded implementations.
	BruteForceParallel
	// SpiderMerge tests all candidates in one pass via a k-way min-heap
	// merge over all attribute cursors — the production fast path: the
	// single-pass I/O optimum without the event-driven synchronisation
	// overhead the paper measures in Sec 3.3.
	SpiderMerge
)

// String names the algorithm.
func (a Algorithm) String() string {
	switch a {
	case BruteForce:
		return "brute-force"
	case SinglePass:
		return "single-pass"
	case SinglePassBlocked:
		return "single-pass-blocked"
	case SQLJoin:
		return "sql-join"
	case SQLMinus:
		return "sql-minus"
	case SQLNotIn:
		return "sql-not-in"
	case InMemory:
		return "in-memory"
	case DeMarchiBaseline:
		return "demarchi"
	case BellBrockhausenBaseline:
		return "bell-brockhausen"
	case BruteForceParallel:
		return "brute-force-parallel"
	case SpiderMerge:
		return "spider-merge"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// ShardPlanner selects how sharded merges plan their range boundaries.
type ShardPlanner int

const (
	// PlannerAuto (the default) plans boundaries from KMV sketch value
	// samples when every attribute carries one (equal estimated mass per
	// shard), and falls back to even min/max splitting otherwise.
	PlannerAuto ShardPlanner = iota
	// PlannerMinMax always splits the global min/max key range into
	// equal-width shards, regardless of the value distribution.
	PlannerMinMax
	// PlannerKMV insists on sample-based planning; when samples are
	// unavailable it still falls back to min/max but records why in
	// Stats.ShardPlanFallback.
	PlannerKMV
)

// String names the planner.
func (p ShardPlanner) String() string {
	switch p {
	case PlannerAuto:
		return "auto"
	case PlannerMinMax:
		return "minmax"
	case PlannerKMV:
		return "kmv"
	default:
		return fmt.Sprintf("ShardPlanner(%d)", int(p))
	}
}

// internal maps the public planner onto the engine enum.
func (p ShardPlanner) internal() ind.ShardPlanner {
	switch p {
	case PlannerMinMax:
		return ind.PlannerMinMax
	case PlannerKMV:
		return ind.PlannerKMV
	default:
		return ind.PlannerAuto
	}
}

// Format selects the on-disk encoding of exported value files and spill
// runs. Readers auto-detect the encoding per file, so results are
// identical under either format — only the I/O profile changes.
type Format int

const (
	// FormatText is the seed encoding: newline-framed, backslash-escaped
	// records, one value per line. Human-inspectable.
	FormatText Format = iota
	// FormatBlock is the columnar binary encoding: front-coded
	// checksummed blocks, a block index for range seeks, and the
	// attribute's sketch embedded in the same file.
	FormatBlock
)

// String names the format ("text" or "block").
func (f Format) String() string { return f.internal().String() }

// ParseFormat converts a format name ("text" or "block") to a Format.
func ParseFormat(s string) (Format, error) {
	v, err := valfile.ParseFormat(s)
	if err != nil {
		return 0, fmt.Errorf("spider: unknown format %q (want text or block)", s)
	}
	switch v {
	case valfile.FormatBlock:
		return FormatBlock, nil
	default:
		return FormatText, nil
	}
}

// internal maps the public format onto the storage enum.
func (f Format) internal() valfile.Format {
	if f == FormatBlock {
		return valfile.FormatBlock
	}
	return valfile.FormatText
}

// Options tunes FindINDs.
type Options struct {
	// Algorithm defaults to BruteForce.
	Algorithm Algorithm
	// WorkDir receives sorted value files; a temporary directory is
	// created (and removed) when empty.
	WorkDir string
	// MaxValuePretest enables the Sec 4.1 pruning: drop candidates whose
	// dependent maximum exceeds the referenced maximum.
	MaxValuePretest bool
	// SamplingPretest, when positive, prunes candidates by probing that
	// many randomly sampled dependent values against the referenced
	// value set before any file test (the Sec 4.1 future-work idea). The
	// pretest is sound: it never removes a satisfied candidate.
	SamplingPretest int
	// Transitivity enables Bell & Brockhausen inference (BruteForce only).
	Transitivity bool
	// DepBlock/RefBlock bound open files for SinglePassBlocked.
	DepBlock, RefBlock int
	// Workers sizes the BruteForceParallel pool (default GOMAXPROCS).
	Workers int
	// ExportWorkers bounds the attribute-export worker pool; 0 selects
	// GOMAXPROCS, 1 exports sequentially (the paper's behaviour).
	ExportWorkers int
	// Streaming (SpiderMerge only) streams sorted values directly from
	// external-sort spill runs instead of materializing one value file
	// per attribute — export and verification become a single pipeline.
	Streaming bool
	// Shards (SpiderMerge only) partitions the canonical value space into
	// that many disjoint ranges and runs one independent heap merge per
	// range concurrently; 0 or 1 keeps the single-threaded merge. The IND
	// output is identical regardless of the shard count.
	Shards int
	// MergeWorkers bounds the shard worker pool; 0 selects
	// min(Shards, GOMAXPROCS).
	MergeWorkers int
	// Planner selects the shard boundary planning strategy (sharded
	// SpiderMerge only). PlannerAuto balances shards by estimated value
	// mass using the KMV sketch samples built by SketchPrefilter; without
	// sketches it splits the min/max key range evenly. The IND output is
	// identical under every planner — only the per-shard load changes.
	Planner ShardPlanner
	// SketchPrefilter enables the per-attribute sketch pre-filter: a
	// KMV min-hash signature plus a partitioned bloom filter, built for
	// every attribute in the same streaming pass that extracts its
	// values, then used to drop candidate pairs before any engine runs.
	// At default settings the filter is SOUND — a candidate is dropped
	// only when a sampled dependent value is provably absent from the
	// referenced attribute (bloom filters have no false negatives) — so
	// the discovered INDs are identical; only refuted candidates skip
	// their tests. File-backed runs persist each sketch next to the
	// attribute's value file.
	SketchPrefilter bool
	// SketchMinContainment, in (0, 1], additionally drops candidates
	// whose sketch-estimated containment |s(a) ∩ s(b)| / |s(a)| falls
	// below it. APPROXIMATE: a satisfied IND can be lost with small
	// probability, so this is opt-in. Zero keeps the pre-filter sound.
	SketchMinContainment float64
	// SketchK sizes the min-hash signature (0 selects the default, 128
	// minima = 1 KiB per attribute); SketchBloomBitsPerValue sizes the
	// bloom filter relative to each attribute's distinct count (0
	// selects the default 10 bits/value ≈ 1% false positives).
	SketchK                 int
	SketchBloomBitsPerValue int
	// SQLEarlyStop lets ROWNUM stop the embedded engine early — the
	// behaviour the paper could not obtain from the commercial optimizer.
	SQLEarlyStop bool
	// Format selects the value-file encoding (FormatText or FormatBlock)
	// for exported attributes and spill runs. The discovered INDs are
	// identical under either format.
	Format Format
	// Store selects the dataset backend extraction writes to and the
	// engines read from (NewFSStore, NewMemStore, NewSnapshotStore).
	// nil keeps the historical layout: value files under WorkDir. The
	// Streaming paths bypass the store — they serve cursors straight
	// from sort runs.
	Store *Store
}

// sketchConfig maps the public sketch knobs onto the package config.
func (o Options) sketchConfig() sketch.Config {
	return sketch.Config{K: o.SketchK, BloomBitsPerValue: o.SketchBloomBitsPerValue}
}

// Stats describes the work a discovery run performed.
type Stats struct {
	// Candidates is the number of IND candidates tested (after pretests);
	// Satisfied of them hold.
	Candidates int
	Satisfied  int
	// ItemsRead counts values read from sorted files (order-based
	// algorithms) or base-table tuples scanned (SQL approaches) — the
	// paper's Figure 5 metric.
	ItemsRead int64
	// BytesRead counts raw bytes pulled from value files by the
	// file-backed engines, the metric that compares FormatText and
	// FormatBlock I/O for the same delivered items. Zero for engines
	// that never open value files.
	BytesRead int64
	// Comparisons counts value comparisons.
	Comparisons int64
	// MaxOpenFiles is the peak number of simultaneously open value files,
	// the single-pass scalability limit of Sec 4.2.
	MaxOpenFiles int
	// Events counts single-pass monitor deliveries (the synchronisation
	// overhead of Sec 3.3).
	Events int64
	// CandidatesPruned counts pairs the sketch pre-filter removed before
	// verification; SketchBytes is the total size of the sketches
	// consulted. Both are zero when the pre-filter is off.
	CandidatesPruned int
	SketchBytes      int64
	// Sharded-run observability (empty on unsharded runs). ShardPlanner
	// names the boundary strategy that actually ran ("explicit", "kmv",
	// "minmax", "single"); ShardPlanFallback records why a requested
	// strategy degraded — e.g. KMV samples absent, or the boundary sample
	// collapsing the run to one shard — instead of hiding the collapse.
	// ShardItemsRead and ShardDurations break the merge work down per
	// shard, so load skew is measurable.
	ShardPlanner      string
	ShardPlanFallback string
	ShardItemsRead    []int64
	ShardDurations    []time.Duration
	// Duration is the wall-clock time of the verification phase.
	Duration time.Duration
}

// Result is the outcome of FindINDs.
type Result struct {
	INDs  []IND
	Stats Stats

	// Persistence state for SaveResultSet: the attribute catalog of the
	// run, the dataset name, and the algorithm that produced the INDs.
	attrs     []*ind.Attribute
	dataset   string
	algorithm string
}

// Database wraps a loaded data source.
type Database struct {
	rel *relstore.Database
}

// NewDatabase returns an empty database with the given name.
func NewDatabase(name string) *Database {
	return &Database{rel: relstore.NewDatabase(name)}
}

// AddTable creates a table from a header and string rows. Column kinds are
// inferred from the data (integers, floats, booleans, otherwise text);
// empty strings load as NULL.
func (d *Database) AddTable(name string, columns []string, rows [][]string) error {
	kinds := make([]value.Kind, len(columns))
	for _, row := range rows {
		if len(row) != len(columns) {
			return fmt.Errorf("spider: table %q: row has %d fields, want %d", name, len(row), len(columns))
		}
		for i, f := range row {
			kinds[i] = value.WidenKind(kinds[i], value.Infer(f))
		}
	}
	cols := make([]relstore.Column, len(columns))
	for i, c := range columns {
		k := kinds[i]
		if k == value.Null {
			k = value.String
		}
		cols[i] = relstore.Column{Name: c, Kind: k}
	}
	tab, err := d.rel.CreateTable(name, cols)
	if err != nil {
		return err
	}
	vals := make([]value.Value, len(cols))
	for _, row := range rows {
		for i, f := range row {
			vals[i] = value.Parse(f, cols[i].Kind)
		}
		if err := tab.Insert(vals); err != nil {
			return err
		}
	}
	return nil
}

// DeclareForeignKey records a known foreign key, used as the gold standard
// by DiscoverSchema's evaluation.
func (d *Database) DeclareForeignKey(dep, ref ColumnRef) error {
	return d.rel.DeclareForeignKey(
		relstore.ColumnRef{Table: dep.Table, Column: dep.Column},
		relstore.ColumnRef{Table: ref.Table, Column: ref.Column},
	)
}

// Tables lists the table names in creation order.
func (d *Database) Tables() []string {
	var out []string
	for _, t := range d.rel.Tables() {
		out = append(out, t.Name)
	}
	return out
}

// Columns lists all columns in catalog order.
func (d *Database) Columns() []ColumnRef {
	var out []ColumnRef
	for _, c := range d.rel.Columns() {
		out = append(out, ColumnRef{Table: c.Table, Column: c.Column})
	}
	return out
}

// RowCount returns the number of rows of the named table, or -1 if the
// table does not exist.
func (d *Database) RowCount(table string) int {
	t := d.rel.Table(table)
	if t == nil {
		return -1
	}
	return t.RowCount()
}

// LoadCSVDir loads every *.csv file of dir as one table each (header
// row + data rows, types inferred).
func LoadCSVDir(name, dir string) (*Database, error) {
	d := NewDatabase(name)
	if _, err := d.rel.LoadCSVDir(dir); err != nil {
		return nil, err
	}
	return d, nil
}

// DatasetConfig scales the built-in paper-shaped datasets.
type DatasetConfig struct {
	// Seed drives all randomness (default 42).
	Seed int64
	// Scale multiplies row counts (default 1.0).
	Scale float64
	// Tables applies to the PDB dataset only (default 39).
	Tables int
	// WideAtoms applies to the PDB dataset only: adds the huge
	// atom-coordinate tables the paper had to drop.
	WideAtoms bool
}

func (c DatasetConfig) seed() int64 {
	if c.Seed == 0 {
		return 42
	}
	return c.Seed
}

// GenerateUniProt builds the UniProt/BioSQL-shaped dataset (16 tables, 85
// attributes, declared FKs).
func GenerateUniProt(cfg DatasetConfig) *Database {
	return &Database{rel: datagen.UniProt(datagen.UniProtConfig{Seed: cfg.seed(), Scale: cfg.Scale})}
}

// GenerateSCOP builds the SCOP-shaped dataset (4 tables, 22 attributes).
func GenerateSCOP(cfg DatasetConfig) *Database {
	return &Database{rel: datagen.SCOP(datagen.SCOPConfig{Seed: cfg.seed(), Scale: cfg.Scale})}
}

// GeneratePDB builds the PDB/OpenMMS-shaped dataset (39 tables by
// default, no declared FKs, surrogate-key pathology).
func GeneratePDB(cfg DatasetConfig) *Database {
	return &Database{rel: datagen.PDB(datagen.PDBConfig{
		Seed: cfg.seed(), Scale: cfg.Scale, Tables: cfg.Tables, WideAtoms: cfg.WideAtoms,
	})}
}

// FindINDs discovers all satisfied unary INDs of db using the selected
// algorithm.
func FindINDs(db *Database, opts Options) (*Result, error) {
	if opts.Streaming && opts.Algorithm != SpiderMerge {
		return nil, fmt.Errorf("spider: Streaming requires Algorithm SpiderMerge (cursors are read once)")
	}
	if opts.SketchMinContainment < 0 || opts.SketchMinContainment > 1 {
		// > 1 would silently prune every candidate (estimates cap at 1).
		return nil, fmt.Errorf("spider: SketchMinContainment must be in [0, 1], got %v", opts.SketchMinContainment)
	}
	exportFiles := needsFiles(opts.Algorithm) && !opts.Streaming
	workDir := opts.WorkDir
	if exportFiles && workDir == "" && opts.Store.needsDir() {
		tmp, err := os.MkdirTemp("", "spider-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(tmp)
		workDir = tmp
	}
	var writeDS, readDS store.Dataset
	if opts.Store != nil {
		writeDS, readDS = opts.Store.datasets(workDir)
	}

	attrs, err := ind.CollectAttributes(db.rel)
	if err != nil {
		return nil, err
	}

	// Extraction. Value cursors come from exported files, or — with
	// Streaming — straight from external-sort spill runs built here,
	// before candidate generation, so that sketches (derived in the same
	// extraction pass) exist by the time the pre-filter runs.
	var counter valfile.ReadCounter
	exportCfg := ind.ExportConfig{
		Dataset: writeDS,
		Dir:     workDir, Workers: exportWorkers(opts),
		Sort:     extsort.Config{TempDir: opts.WorkDir, Format: opts.Format.internal()},
		Sketches: opts.SketchPrefilter, SketchConfig: opts.sketchConfig(),
		Format: opts.Format.internal(),
	}
	var streamSrc *ind.SorterSource
	var sharedSrc *ind.RunsSource
	switch {
	case exportFiles:
		if err := ind.ExportAttributes(db.rel, attrs, exportCfg); err != nil {
			return nil, err
		}
	case opts.Streaming && opts.Shards > 1:
		// Sharded streaming freezes each attribute's sorter into
		// shareable runs that every shard replays over its own range.
		sharedSrc, err = ind.StreamAttributesShared(db.rel, attrs, exportCfg, &counter)
		if err != nil {
			return nil, err
		}
		defer sharedSrc.Close()
	case opts.Streaming:
		streamSrc, err = ind.StreamAttributes(db.rel, attrs, exportCfg, &counter)
		if err != nil {
			return nil, err
		}
		defer streamSrc.Close()
	case opts.SketchPrefilter:
		// Engines that never extract value sets (SQL, in-memory,
		// baselines) still get sketches, from a direct column scan.
		if err := ind.BuildAttributeSketches(db.rel, attrs, opts.sketchConfig(), exportWorkers(opts)); err != nil {
			return nil, err
		}
	}

	cands, _ := ind.GenerateCandidates(attrs, ind.GenOptions{MaxValuePretest: opts.MaxValuePretest})
	if opts.SamplingPretest > 0 {
		var serr error
		cands, _, serr = ind.SamplingPretest(db.rel, cands, ind.SamplingOptions{
			SampleSize: opts.SamplingPretest, Seed: 1,
		})
		if serr != nil {
			return nil, serr
		}
	}
	var sketchStats ind.SketchPretestStats
	if opts.SketchPrefilter {
		cands, sketchStats = ind.SketchPretest(cands, ind.SketchPretestOptions{
			ExactRefutation: true, MinContainment: opts.SketchMinContainment,
		})
	}

	var res *ind.Result
	switch opts.Algorithm {
	case BruteForce:
		res, err = ind.BruteForce(cands, ind.BruteForceOptions{Counter: &counter, Store: readDS, Transitivity: opts.Transitivity})
	case BruteForceParallel:
		res, err = ind.BruteForceParallel(cands, ind.ParallelOptions{Counter: &counter, Store: readDS, Workers: opts.Workers})
	case SinglePass:
		res, err = ind.SinglePass(cands, ind.SinglePassOptions{Counter: &counter, Store: readDS})
	case SinglePassBlocked:
		res, err = ind.SinglePassBlocked(cands, ind.BlockedOptions{
			DepBlock: opts.DepBlock, RefBlock: opts.RefBlock, Counter: &counter, Store: readDS,
		})
	case SpiderMerge:
		if opts.Shards > 1 {
			smOpts := ind.ShardedMergeOptions{
				Counter: &counter, Store: readDS, Shards: opts.Shards, Workers: opts.MergeWorkers,
				Planner: opts.Planner.internal(),
			}
			if sharedSrc != nil {
				smOpts.Source = sharedSrc
			}
			res, err = ind.ShardedSpiderMerge(cands, smOpts)
			break
		}
		smOpts := ind.SpiderMergeOptions{Counter: &counter, Store: readDS}
		if streamSrc != nil {
			smOpts.Source = streamSrc
		}
		res, err = ind.SpiderMerge(cands, smOpts)
	case SQLJoin, SQLMinus, SQLNotIn:
		variant := map[Algorithm]ind.SQLVariant{
			SQLJoin: ind.SQLJoin, SQLMinus: ind.SQLMinus, SQLNotIn: ind.SQLNotIn,
		}[opts.Algorithm]
		res, err = ind.RunSQL(db.rel, cands, ind.SQLOptions{Variant: variant, EarlyStop: opts.SQLEarlyStop})
	case InMemory:
		sets := make(map[int][]string, len(attrs))
		for _, a := range attrs {
			vals, derr := db.rel.Table(a.Ref.Table).DistinctCanonical(a.Ref.Column)
			if derr != nil {
				return nil, derr
			}
			sets[a.ID] = vals
		}
		res = ind.Reference(cands, sets)
	case DeMarchiBaseline:
		dm, derr := ind.DeMarchi(db.rel, attrs, cands, ind.DeMarchiOptions{})
		if derr != nil {
			return nil, derr
		}
		res = &ind.Result{Satisfied: dm.Satisfied, Stats: dm.Stats.Stats}
	case BellBrockhausenBaseline:
		bb, berr := ind.BellBrockhausen(db.rel, attrs)
		if berr != nil {
			return nil, berr
		}
		res = &ind.Result{Satisfied: bb.Satisfied, Stats: bb.Stats.Stats}
	default:
		return nil, fmt.Errorf("spider: unknown algorithm %v", opts.Algorithm)
	}
	if err != nil {
		return nil, err
	}
	res.Stats.CandidatesPruned = sketchStats.Pruned
	res.Stats.SketchBytes = sketchStats.SketchBytes
	out := convertResult(res)
	out.attrs = attrs
	out.dataset = db.rel.Name
	out.algorithm = opts.Algorithm.String()
	return out, nil
}

// exportWorkers resolves Options.ExportWorkers to a pool size.
func exportWorkers(opts Options) int {
	return workerPool(opts.ExportWorkers)
}

func needsFiles(a Algorithm) bool {
	switch a {
	case BruteForce, BruteForceParallel, SinglePass, SinglePassBlocked, SpiderMerge:
		return true
	default:
		return false
	}
}

// convertStats maps the internal stats onto the public ones.
func convertStats(st ind.Stats) Stats {
	return Stats{
		Candidates:        st.Candidates,
		Satisfied:         st.Satisfied,
		ItemsRead:         st.ItemsRead,
		BytesRead:         st.BytesRead,
		Comparisons:       st.Comparisons,
		MaxOpenFiles:      st.MaxOpenFiles,
		Events:            st.Events,
		CandidatesPruned:  st.CandidatesPruned,
		SketchBytes:       st.SketchBytes,
		ShardPlanner:      st.ShardPlanner,
		ShardPlanFallback: st.ShardPlanFallback,
		ShardItemsRead:    st.ShardItemsRead,
		ShardDurations:    st.ShardDurations,
		Duration:          st.Duration,
	}
}

func convertResult(res *ind.Result) *Result {
	out := &Result{Stats: convertStats(res.Stats)}
	for _, d := range res.Satisfied {
		out.INDs = append(out.INDs, IND{
			Dep: ColumnRef{Table: d.Dep.Table, Column: d.Dep.Column},
			Ref: ColumnRef{Table: d.Ref.Table, Column: d.Ref.Column},
		})
	}
	return out
}
