// Benchmarks regenerating every table and figure of the paper's
// evaluation (see DESIGN.md §2 for the experiment index and EXPERIMENTS.md
// for measured-vs-paper results):
//
//	BenchmarkTable1_*    — Table 1, the three SQL approaches
//	BenchmarkTable2_*    — Table 2, brute force and single pass vs join
//	BenchmarkFigure5     — Figure 5, items read vs number of attributes
//	BenchmarkPruning_*   — Sec 4.1, the max-value pretest
//	BenchmarkSection5_*  — Sec 5, schema-discovery quality
//	BenchmarkAblation_*  — single-pass overhead, block-wise variant, and
//	                       the ROWNUM/hash early stop the paper wished for
//	BenchmarkModern_*    — the spider-merge heap engine vs the faithful
//	                       event-driven single pass (UniProt, scale 0.25)
//	BenchmarkExportWorkers, BenchmarkStreamingSpiderMerge — parallel
//	                       attribute export and the streaming cursor path
//	BenchmarkShardedSpiderMerge, BenchmarkShardedStreaming — the sharded
//	                       engine: S value-range shards, one heap merge
//	                       each, on a worker pool
//
// Times are not comparable to the paper's absolute numbers (its datasets
// are ~100x larger and ran on a 2005 commercial RDBMS); the shapes — who
// wins, by what factor, where the approaches break down — are.
package spider

import (
	"fmt"
	"os"
	"sync"
	"testing"

	"spider/internal/datagen"
	"spider/internal/experiments"
	"spider/internal/extsort"
	"spider/internal/ind"
	"spider/internal/relstore"
	"spider/internal/sketch"
	"spider/internal/valfile"
)

// benchCfg sizes the datasets so the full suite completes in minutes
// while preserving the paper's shapes.
func benchCfg() experiments.Config {
	return experiments.Config{
		Seed:         42,
		UniProtScale: 0.15,
		SCOPScale:    0.15,
		PDBScale:     0.03,
		PDBTables:    39,
	}
}

// dsCache builds each dataset once per `go test -bench` process.
var dsCache = struct {
	sync.Mutex
	m map[string]*experiments.Dataset
}{m: make(map[string]*experiments.Dataset)}

func benchDataset(b *testing.B, name string) *experiments.Dataset {
	return benchDatasetScaled(b, name, name, benchCfg())
}

func benchDatasetScaled(b *testing.B, key, name string, cfg experiments.Config) *experiments.Dataset {
	b.Helper()
	dsCache.Lock()
	defer dsCache.Unlock()
	if ds, ok := dsCache.m[key]; ok {
		return ds
	}
	ds, err := experiments.BuildDataset(name, cfg, ind.GenOptions{})
	if err != nil {
		b.Fatal(err)
	}
	dsCache.m[key] = ds
	return ds
}

// reportRun attaches the run's work counters as benchmark metrics.
func reportRun(b *testing.B, res *ind.Result) {
	b.Helper()
	b.ReportMetric(float64(res.Stats.ItemsRead), "items/op")
	b.ReportMetric(float64(res.Stats.Satisfied), "INDs")
	if res.Stats.Events > 0 {
		b.ReportMetric(float64(res.Stats.Events), "events/op")
	}
}

// --- Table 1: SQL approaches (Sec 2.2) --------------------------------

func benchSQL(b *testing.B, dataset string, variant ind.SQLVariant) {
	ds := benchDataset(b, dataset)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := ind.RunSQL(ds.DB, ds.Candidates, ind.SQLOptions{Variant: variant})
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportRun(b, res)
		}
	}
}

func BenchmarkTable1_UniProt_Join(b *testing.B)  { benchSQL(b, "uniprot", ind.SQLJoin) }
func BenchmarkTable1_UniProt_Minus(b *testing.B) { benchSQL(b, "uniprot", ind.SQLMinus) }
func BenchmarkTable1_UniProt_NotIn(b *testing.B) { benchSQL(b, "uniprot", ind.SQLNotIn) }
func BenchmarkTable1_SCOP_Join(b *testing.B)     { benchSQL(b, "scop", ind.SQLJoin) }
func BenchmarkTable1_SCOP_Minus(b *testing.B)    { benchSQL(b, "scop", ind.SQLMinus) }
func BenchmarkTable1_SCOP_NotIn(b *testing.B)    { benchSQL(b, "scop", ind.SQLNotIn) }

// BenchmarkTable1_PDB_Join is the only SQL cell the paper could attempt
// on PDB (minus and not-in never terminated and are "-" in Table 1).
func BenchmarkTable1_PDB_Join(b *testing.B) { benchSQL(b, "pdb", ind.SQLJoin) }

// --- Table 2: order-based approaches (Sec 3.3) ------------------------

func benchBruteForce(b *testing.B, dataset string) {
	ds := benchDataset(b, dataset)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var counter valfile.ReadCounter
		res, err := ind.BruteForce(ds.Candidates, ind.BruteForceOptions{Counter: &counter})
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportRun(b, res)
		}
	}
}

func benchSinglePass(b *testing.B, dataset string) {
	ds := benchDataset(b, dataset)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var counter valfile.ReadCounter
		res, err := ind.SinglePass(ds.Candidates, ind.SinglePassOptions{Counter: &counter})
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportRun(b, res)
		}
	}
}

func benchSpiderMerge(b *testing.B, dataset string) {
	ds := benchDataset(b, dataset)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var counter valfile.ReadCounter
		res, err := ind.SpiderMerge(ds.Candidates, ind.SpiderMergeOptions{Counter: &counter})
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportRun(b, res)
		}
	}
}

func BenchmarkTable2_UniProt_BruteForce(b *testing.B)  { benchBruteForce(b, "uniprot") }
func BenchmarkTable2_UniProt_SinglePass(b *testing.B)  { benchSinglePass(b, "uniprot") }
func BenchmarkTable2_UniProt_SpiderMerge(b *testing.B) { benchSpiderMerge(b, "uniprot") }
func BenchmarkTable2_SCOP_BruteForce(b *testing.B)     { benchBruteForce(b, "scop") }
func BenchmarkTable2_SCOP_SinglePass(b *testing.B)     { benchSinglePass(b, "scop") }
func BenchmarkTable2_SCOP_SpiderMerge(b *testing.B)    { benchSpiderMerge(b, "scop") }
func BenchmarkTable2_PDB_BruteForce(b *testing.B)      { benchBruteForce(b, "pdb") }
func BenchmarkTable2_PDB_SpiderMerge(b *testing.B)     { benchSpiderMerge(b, "pdb") }

// BenchmarkTable2_PDB_SinglePassBlocked stands in for the unblocked
// single pass, which the paper could not run on the wide PDB fraction
// ("we had to open 2560 files, which is not feasible for our system").
func BenchmarkTable2_PDB_SinglePassBlocked(b *testing.B) {
	ds := benchDataset(b, "pdb")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var counter valfile.ReadCounter
		res, err := ind.SinglePassBlocked(ds.Candidates, ind.BlockedOptions{
			DepBlock: 64, RefBlock: 64, Counter: &counter,
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportRun(b, res)
			b.ReportMetric(float64(res.Stats.MaxOpenFiles), "openfiles")
		}
	}
}

// --- Figure 5: I/O comparison (Sec 3.3) -------------------------------

func BenchmarkFigure5(b *testing.B) {
	ds := benchDataset(b, "uniprot")
	for _, n := range []int{10, 20, 30, 40, 50, 60, 70, 85} {
		subset := ds.Attrs
		if n < len(subset) {
			subset = subset[:n]
		}
		cands, _ := ind.GenerateCandidates(subset, ind.GenOptions{})
		b.Run(fmt.Sprintf("attrs=%d/brute-force", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				var counter valfile.ReadCounter
				if _, err := ind.BruteForce(cands, ind.BruteForceOptions{Counter: &counter}); err != nil {
					b.Fatal(err)
				}
				if i == b.N-1 {
					b.ReportMetric(float64(counter.Total()), "items/op")
				}
			}
		})
		b.Run(fmt.Sprintf("attrs=%d/single-pass", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				var counter valfile.ReadCounter
				if _, err := ind.SinglePass(cands, ind.SinglePassOptions{Counter: &counter}); err != nil {
					b.Fatal(err)
				}
				if i == b.N-1 {
					b.ReportMetric(float64(counter.Total()), "items/op")
				}
			}
		})
		b.Run(fmt.Sprintf("attrs=%d/spider-merge", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				var counter valfile.ReadCounter
				if _, err := ind.SpiderMerge(cands, ind.SpiderMergeOptions{Counter: &counter}); err != nil {
					b.Fatal(err)
				}
				if i == b.N-1 {
					b.ReportMetric(float64(counter.Total()), "items/op")
				}
			}
		})
	}
}

// --- Modern extension: heap merge vs the event-driven single pass -------

// BenchmarkModern_UniProt25 is the acceptance comparison on the UniProt
// dataset at scale 0.25: SpiderMerge must read each value file at most
// once (items/op at or below the single pass) while avoiding the monitor
// synchronisation that makes the faithful single pass slow (Sec 3.3).
func BenchmarkModern_UniProt25(b *testing.B) {
	cfg := benchCfg()
	cfg.UniProtScale = 0.25
	ds := benchDatasetScaled(b, "uniprot-0.25", "uniprot", cfg)
	b.Run("single-pass", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var counter valfile.ReadCounter
			res, err := ind.SinglePass(ds.Candidates, ind.SinglePassOptions{Counter: &counter})
			if err != nil {
				b.Fatal(err)
			}
			if i == b.N-1 {
				reportRun(b, res)
			}
		}
	})
	b.Run("spider-merge", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var counter valfile.ReadCounter
			res, err := ind.SpiderMerge(ds.Candidates, ind.SpiderMergeOptions{Counter: &counter})
			if err != nil {
				b.Fatal(err)
			}
			if i == b.N-1 {
				reportRun(b, res)
			}
		}
	})
	// The acceptance comparison for the sharded engine: 4 value-range
	// shards merged concurrently must beat the single-threaded merge by
	// ≥2x wall clock on a multi-core runner, with identical INDs.
	b.Run("sharded-4", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var counter valfile.ReadCounter
			res, err := ind.ShardedSpiderMerge(ds.Candidates, ind.ShardedMergeOptions{Counter: &counter, Shards: 4})
			if err != nil {
				b.Fatal(err)
			}
			if i == b.N-1 {
				reportRun(b, res)
			}
		}
	})
}

// BenchmarkShardedSpiderMerge sweeps the shard count on the UniProt
// dataset at scale 0.25. Each shard runs an independent heap merge over
// one slice of the value space; satisfied counts must not move.
func BenchmarkShardedSpiderMerge(b *testing.B) {
	cfg := benchCfg()
	cfg.UniProtScale = 0.25
	ds := benchDatasetScaled(b, "uniprot-0.25", "uniprot", cfg)
	base, err := ind.SpiderMerge(ds.Candidates, ind.SpiderMergeOptions{})
	if err != nil {
		b.Fatal(err)
	}
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				var counter valfile.ReadCounter
				res, err := ind.ShardedSpiderMerge(ds.Candidates, ind.ShardedMergeOptions{
					Counter: &counter, Shards: shards,
				})
				if err != nil {
					b.Fatal(err)
				}
				if res.Stats.Satisfied != base.Stats.Satisfied {
					b.Fatalf("sharding changed results: %d vs %d", res.Stats.Satisfied, base.Stats.Satisfied)
				}
				if i == b.N-1 {
					reportRun(b, res)
				}
			}
		})
	}
}

// BenchmarkShardedStreaming runs the fully streaming sharded pipeline:
// frozen spill runs replayed once per shard, no value files at all.
func BenchmarkShardedStreaming(b *testing.B) {
	ds := benchDataset(b, "uniprot")
	for i := 0; i < b.N; i++ {
		var counter valfile.ReadCounter
		src, err := ind.StreamAttributesShared(ds.DB, ds.Attrs, ind.ExportConfig{
			Sort: extsort.Config{TempDir: b.TempDir()},
		}, &counter)
		if err != nil {
			b.Fatal(err)
		}
		res, err := ind.ShardedSpiderMerge(ds.Candidates, ind.ShardedMergeOptions{
			Counter: &counter, Source: src, Shards: 4,
		})
		src.Close()
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportRun(b, res)
		}
	}
}

// BenchmarkExportWorkers sweeps the attribute-export worker pool on the
// UniProt dataset: extraction is embarrassingly parallel per attribute.
func BenchmarkExportWorkers(b *testing.B) {
	ds := benchDataset(b, "uniprot")
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				// Export copies so the cached dataset's Paths stay valid.
				attrs := make([]*ind.Attribute, len(ds.Attrs))
				for j, a := range ds.Attrs {
					cp := *a
					attrs[j] = &cp
				}
				dir := b.TempDir()
				if err := ind.ExportAttributes(ds.DB, attrs, ind.ExportConfig{Dir: dir, Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkStreamingSpiderMerge runs the fully streaming pipeline —
// values flow from the relation store through external-sort spill runs
// straight into the heap merge, never materializing value files.
func BenchmarkStreamingSpiderMerge(b *testing.B) {
	ds := benchDataset(b, "uniprot")
	for i := 0; i < b.N; i++ {
		var counter valfile.ReadCounter
		src, err := ind.StreamAttributes(ds.DB, ds.Attrs, ind.ExportConfig{
			Sort: extsort.Config{TempDir: b.TempDir()},
		}, &counter)
		if err != nil {
			b.Fatal(err)
		}
		res, err := ind.SpiderMerge(ds.Candidates, ind.SpiderMergeOptions{Counter: &counter, Source: src})
		src.Close()
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportRun(b, res)
		}
	}
}

// --- Sec 4.1: candidate pruning ----------------------------------------

func benchPruning(b *testing.B, dataset string, pretest bool) {
	ds := benchDataset(b, dataset)
	cands := ds.Candidates
	if pretest {
		cands, _ = ind.GenerateCandidates(ds.Attrs, ind.GenOptions{MaxValuePretest: true})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := ind.BruteForce(cands, ind.BruteForceOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(float64(res.Stats.Candidates), "candidates")
			b.ReportMetric(float64(res.Stats.Satisfied), "INDs")
		}
	}
}

func BenchmarkPruning_UniProt_NoPretest(b *testing.B)  { benchPruning(b, "uniprot", false) }
func BenchmarkPruning_UniProt_MaxPretest(b *testing.B) { benchPruning(b, "uniprot", true) }
func BenchmarkPruning_SCOP_NoPretest(b *testing.B)     { benchPruning(b, "scop", false) }
func BenchmarkPruning_SCOP_MaxPretest(b *testing.B)    { benchPruning(b, "scop", true) }
func BenchmarkPruning_PDB_NoPretest(b *testing.B)      { benchPruning(b, "pdb", false) }
func BenchmarkPruning_PDB_MaxPretest(b *testing.B)     { benchPruning(b, "pdb", true) }

// --- Sec 5: schema discovery -------------------------------------------

// BenchmarkSection5_FKQuality runs the full BioSQL gold-standard check:
// recall must stay 1.0 with zero false positives on every iteration.
func BenchmarkSection5_FKQuality(b *testing.B) {
	db := GenerateUniProt(DatasetConfig{Seed: 42, Scale: 0.15})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := DiscoverSchema(db, SchemaOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if rep.FKEvaluation.Recall != 1 || len(rep.FKEvaluation.FalsePositives) != 0 {
			b.Fatalf("quality regression: %+v", rep.FKEvaluation)
		}
		if i == b.N-1 {
			b.ReportMetric(float64(rep.FKEvaluation.FoundFKs), "FKs")
			b.ReportMetric(float64(rep.FKEvaluation.TransitiveINDs), "transitive")
		}
	}
}

// BenchmarkSection5_PrimaryRelation ranks primary relations on the
// OpenMMS-shaped dataset; struct must win.
func BenchmarkSection5_PrimaryRelation(b *testing.B) {
	db := GeneratePDB(DatasetConfig{Seed: 42, Scale: 0.05})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := DiscoverSchema(db, SchemaOptions{AccessionMinFraction: 0.99})
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.PrimaryRelations) == 0 || rep.PrimaryRelations[0].Table != "struct" {
			b.Fatalf("primary relation regression: %v", rep.PrimaryRelations)
		}
		if i == b.N-1 {
			b.ReportMetric(float64(len(rep.INDs)), "INDs")
			b.ReportMetric(float64(len(rep.AccessionCandidates)), "accessions")
		}
	}
}

// --- Ablations -----------------------------------------------------------

// BenchmarkAblation_SinglePassOverhead isolates the Sec 3.3 discussion:
// the single pass reads less but pays per-event synchronisation costs.
func BenchmarkAblation_SinglePassOverhead(b *testing.B) {
	ds := benchDataset(b, "uniprot")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := ind.SinglePass(ds.Candidates, ind.SinglePassOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(float64(res.Stats.Events), "events/op")
			b.ReportMetric(float64(res.Stats.Comparisons), "cmp/op")
		}
	}
}

// BenchmarkAblation_Blockwise sweeps the Sec 4.2 block size: open files
// shrink, re-read I/O grows.
func BenchmarkAblation_Blockwise(b *testing.B) {
	ds := benchDataset(b, "uniprot")
	for _, block := range []int{4, 16, 64, 0} {
		name := fmt.Sprintf("depblock=%d", block)
		if block == 0 {
			name = "depblock=all"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				var counter valfile.ReadCounter
				res, err := ind.SinglePassBlocked(ds.Candidates, ind.BlockedOptions{
					DepBlock: block, Counter: &counter,
				})
				if err != nil {
					b.Fatal(err)
				}
				if i == b.N-1 {
					b.ReportMetric(float64(counter.Total()), "items/op")
					b.ReportMetric(float64(res.Stats.MaxOpenFiles), "openfiles")
				}
			}
		})
	}
}

// BenchmarkAblation_SQLEarlyStop compares the faithful optimizer with the
// one the paper's authors wished for (streaming ROWNUM plus hashed NOT
// IN) on the not-in statement.
func BenchmarkAblation_SQLEarlyStop(b *testing.B) {
	ds := benchDataset(b, "uniprot")
	for _, early := range []bool{false, true} {
		name := "faithful"
		if early {
			name = "wished-for"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := ind.RunSQL(ds.DB, ds.Candidates, ind.SQLOptions{
					Variant: ind.SQLNotIn, EarlyStop: early,
				})
				if err != nil {
					b.Fatal(err)
				}
				if i == b.N-1 {
					b.ReportMetric(float64(res.Stats.ItemsRead), "items/op")
				}
			}
		})
	}
}

// BenchmarkAblation_SamplingPretest measures the Sec 4.1 future-work
// pretest: candidates pruned by sampled probes before any file I/O.
func BenchmarkAblation_SamplingPretest(b *testing.B) {
	ds := benchDataset(b, "uniprot")
	for _, size := range []int{0, 4, 16, 64} {
		b.Run(fmt.Sprintf("sample=%d", size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cands := ds.Candidates
				if size > 0 {
					var err error
					cands, _, err = ind.SamplingPretest(ds.DB, cands, ind.SamplingOptions{SampleSize: size, Seed: 1})
					if err != nil {
						b.Fatal(err)
					}
				}
				res, err := ind.BruteForce(cands, ind.BruteForceOptions{})
				if err != nil {
					b.Fatal(err)
				}
				if i == b.N-1 {
					b.ReportMetric(float64(len(cands)), "candidates")
					b.ReportMetric(float64(res.Stats.Satisfied), "INDs")
				}
			}
		})
	}
}

// BenchmarkAblation_SketchPrefilter measures the sketch pre-filter at
// sound settings (definite bloom refutation only): sketch build +
// candidate pruning + SpiderMerge over the survivors, vs the unfiltered
// merge at sketch=off. The IND output is identical by construction.
func BenchmarkAblation_SketchPrefilter(b *testing.B) {
	ds := benchDataset(b, "uniprot")
	for _, enabled := range []bool{false, true} {
		b.Run(fmt.Sprintf("sketch=%v", enabled), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cands := ds.Candidates
				var pruned int
				if enabled {
					for _, a := range ds.Attrs {
						a.Sketch = nil // rebuild each iteration: the build is part of the cost
					}
					if err := ind.BuildAttributeSketches(ds.DB, ds.Attrs, sketch.Config{}, 0); err != nil {
						b.Fatal(err)
					}
					var st ind.SketchPretestStats
					cands, st = ind.SketchPretest(cands, ind.SketchPretestOptions{ExactRefutation: true})
					pruned = st.Pruned
				}
				res, err := ind.SpiderMerge(cands, ind.SpiderMergeOptions{})
				if err != nil {
					b.Fatal(err)
				}
				if i == b.N-1 {
					b.ReportMetric(float64(pruned), "pruned")
					b.ReportMetric(float64(res.Stats.Satisfied), "INDs")
				}
			}
		})
	}
}

// BenchmarkAblation_PartialINDs sweeps the partial threshold σ (Sec 7
// future work): lower thresholds match more candidates but lose the
// early stop, reading more items.
func BenchmarkAblation_PartialINDs(b *testing.B) {
	ds := benchDataset(b, "uniprot")
	for _, sigma := range []float64{1.0, 0.95, 0.8, 0.5} {
		b.Run(fmt.Sprintf("sigma=%.2f", sigma), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				var counter valfile.ReadCounter
				res, err := ind.BruteForcePartial(ds.Candidates, ind.PartialOptions{
					Threshold: sigma, Counter: &counter,
				})
				if err != nil {
					b.Fatal(err)
				}
				if i == b.N-1 {
					b.ReportMetric(float64(res.Stats.Satisfied), "INDs")
					b.ReportMetric(float64(counter.Total()), "items/op")
				}
			}
		})
	}
}

// --- Partial INDs: one-pass merge vs per-candidate rescans --------------

// partialBenchCands generates the σ-aware candidate set on the UniProt
// dataset at scale 0.25 — the acceptance comparison for the partial
// engine.
func partialBenchCands(b *testing.B) (*experiments.Dataset, []ind.Candidate) {
	b.Helper()
	cfg := benchCfg()
	cfg.UniProtScale = 0.25
	ds := benchDatasetScaled(b, "uniprot-0.25", "uniprot", cfg)
	cands, _ := ind.GenerateCandidates(ds.Attrs, ind.GenOptions{PartialThreshold: 0.9})
	return ds, cands
}

// BenchmarkBruteForcePartial is the baseline: both value files reopened
// and rescanned for every candidate (quadratic I/O in the candidates
// sharing an attribute).
func BenchmarkBruteForcePartial(b *testing.B) {
	_, cands := partialBenchCands(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var counter valfile.ReadCounter
		res, err := ind.BruteForcePartial(cands, ind.PartialOptions{Threshold: 0.9, Counter: &counter})
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(float64(counter.Total()), "items/op")
			b.ReportMetric(float64(res.Stats.Satisfied), "INDs")
		}
	}
}

// BenchmarkPartialSpiderMerge tests every candidate in one pass; the
// acceptance bar is ≥3x fewer items read than BenchmarkBruteForcePartial,
// with identical results at every shard count.
func BenchmarkPartialSpiderMerge(b *testing.B) {
	_, cands := partialBenchCands(b)
	base, err := ind.BruteForcePartial(cands, ind.PartialOptions{Threshold: 0.9})
	if err != nil {
		b.Fatal(err)
	}
	for _, shards := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				var counter valfile.ReadCounter
				res, err := ind.ShardedPartialSpiderMerge(cands, ind.ShardedPartialMergeOptions{
					Threshold: 0.9, Counter: &counter, Shards: shards,
				})
				if err != nil {
					b.Fatal(err)
				}
				if res.Stats.Satisfied != base.Stats.Satisfied {
					b.Fatalf("partial merge (S=%d) changed results: %d vs %d",
						shards, res.Stats.Satisfied, base.Stats.Satisfied)
				}
				if i == b.N-1 {
					b.ReportMetric(float64(counter.Total()), "items/op")
					b.ReportMetric(float64(res.Stats.Satisfied), "INDs")
				}
			}
		})
	}
}

// BenchmarkBaselines compares this paper's algorithms with the Sec 6
// related-work comparators on the UniProt-shaped dataset: De Marchi's
// inverted-index approach pays its "huge preprocessing requirement"
// up front; Bell & Brockhausen pays one SQL join per non-inferable
// candidate.
func BenchmarkBaselines(b *testing.B) {
	ds := benchDataset(b, "uniprot")
	b.Run("brute-force", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ind.BruteForce(ds.Candidates, ind.BruteForceOptions{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("demarchi", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := ind.DeMarchi(ds.DB, ds.Attrs, ds.Candidates, ind.DeMarchiOptions{})
			if err != nil {
				b.Fatal(err)
			}
			if i == b.N-1 {
				b.ReportMetric(float64(res.Stats.IndexEntries), "indexentries")
				b.ReportMetric(float64(res.Stats.Preprocessing.Nanoseconds()), "prep-ns")
			}
		}
	})
	b.Run("bell-brockhausen", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := ind.BellBrockhausen(ds.DB, ds.Attrs)
			if err != nil {
				b.Fatal(err)
			}
			if i == b.N-1 {
				b.ReportMetric(float64(res.Stats.TestedWithSQL), "sqlstmts")
				b.ReportMetric(float64(res.Stats.InferredSatisfied+res.Stats.InferredRefuted), "inferred")
			}
		}
	})
}

// BenchmarkNary times levelwise n-ary discovery (Sec 6's multivalued
// INDs) on the SCOP-shaped dataset, whose shared sunid domains produce
// real higher-arity inclusions.
func BenchmarkNary(b *testing.B) {
	ds := benchDataset(b, "scop")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := ind.DiscoverNary(ds.DB, ind.NaryOptions{MaxArity: 3})
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			total := 0
			for _, n := range res.Stats.SatisfiedByArity[2:] {
				total += n
			}
			b.ReportMetric(float64(total), "nary-INDs")
			b.ReportMetric(float64(res.Stats.TuplesCompared), "tuples/op")
		}
	}
}

// BenchmarkNaryTupleSets times levelwise n-ary discovery with the
// in-memory tuple-set reference engine on UniProt — the memory-bound
// baseline the merge engine is measured against. b.ReportAllocs makes
// the tuple-set footprint visible next to BenchmarkNaryMerge's.
func BenchmarkNaryTupleSets(b *testing.B) {
	for _, name := range []string{"uniprot", "scop"} {
		ds := benchDataset(b, name)
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := ind.DiscoverNary(ds.DB, ind.NaryOptions{MaxArity: 3})
				if err != nil {
					b.Fatal(err)
				}
				if i == b.N-1 {
					b.ReportMetric(float64(len(res.Satisfied)), "nary-INDs")
					b.ReportMetric(float64(res.Stats.TuplesCompared), "tuples/op")
				}
			}
		})
	}
}

// BenchmarkNaryMerge times the merge-backed n-ary engine on UniProt
// across shard counts: every level is one (sharded) heap merge over
// sorted encoded-tuple streams, so peak memory is bounded by the extsort
// buffers rather than the distinct-tuple sets B/op of the baseline.
func BenchmarkNaryMerge(b *testing.B) {
	for _, name := range []string{"uniprot", "scop"} {
		ds := benchDataset(b, name)
		for _, shards := range []int{1, 4} {
			b.Run(fmt.Sprintf("%s/shards=%d", name, shards), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					res, err := ind.DiscoverNary(ds.DB, ind.NaryOptions{
						MaxArity: 3, Algorithm: ind.NaryMerge, Shards: shards,
					})
					if err != nil {
						b.Fatal(err)
					}
					if i == b.N-1 {
						b.ReportMetric(float64(len(res.Satisfied)), "nary-INDs")
						b.ReportMetric(float64(res.Stats.ItemsRead), "items/op")
					}
				}
			})
		}
	}
}

// BenchmarkParallelBruteForce sweeps the worker pool on the PDB-shaped
// dataset — the modern extension beyond the paper's single-threaded runs.
func BenchmarkParallelBruteForce(b *testing.B) {
	ds := benchDataset(b, "pdb")
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := ind.BruteForceParallel(ds.Candidates, ind.ParallelOptions{Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
				if i == b.N-1 {
					b.ReportMetric(float64(res.Stats.Satisfied), "INDs")
				}
			}
		})
	}
}

// BenchmarkAblation_ResemblancePretest measures the Dasu et al. sketch
// filter (Sec 6): candidates pruned by min-hash containment estimates.
func BenchmarkAblation_ResemblancePretest(b *testing.B) {
	ds := benchDataset(b, "uniprot")
	for _, size := range []int{16, 64, 256} {
		b.Run(fmt.Sprintf("sketch=%d", size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				kept, _, err := ind.ResemblancePretest(ds.DB, ds.Candidates, ind.ResemblanceOptions{SketchSize: size})
				if err != nil {
					b.Fatal(err)
				}
				res, err := ind.BruteForce(kept, ind.BruteForceOptions{})
				if err != nil {
					b.Fatal(err)
				}
				if i == b.N-1 {
					b.ReportMetric(float64(len(kept)), "candidates")
					b.ReportMetric(float64(res.Stats.Satisfied), "INDs")
				}
			}
		})
	}
}

// BenchmarkSubstrate_* time the load-bearing substrates in isolation.

func BenchmarkSubstrate_ExternalSort(b *testing.B) {
	vals := make([]string, 50_000)
	for i := range vals {
		vals[i] = fmt.Sprintf("value-%06d", i%17_000)
	}
	dir := b.TempDir()
	cfg := extsort.Config{MaxInMemory: 8192, TempDir: dir}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := extsort.SortToFile(vals, fmt.Sprintf("%s/out-%d.val", dir, i), cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSubstrate_SQLJoinQuery(b *testing.B) {
	ds := benchDataset(b, "uniprot")
	var c ind.Candidate
	for _, cand := range ds.Candidates {
		if cand.Dep.Ref == (relstore.ColumnRef{Table: "sg_bioentry_reference", Column: "bioentry_oid"}) {
			c = cand
			break
		}
	}
	if c.Dep == nil {
		b.Skip("candidate not present at this scale")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ind.RunSQL(ds.DB, []ind.Candidate{c}, ind.SQLOptions{Variant: ind.SQLJoin}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Pipeline saturation: overlapped levels, KMV planning, embedded merge ---

// BenchmarkNaryOverlap isolates the overlapped level schedule: the same
// merge-backed n-ary run with levels forced strictly one-at-a-time
// (sequential) vs the default overlap, where independent table-pair
// groups merge concurrently and the next level's tuple streams are
// extracted speculatively as each group's verdicts finalize. Workers
// default to GOMAXPROCS: on a single-core runner the win comes from the
// smaller per-group heaps alone; with cores the concurrency compounds it.
func BenchmarkNaryOverlap(b *testing.B) {
	for _, name := range []string{"uniprot", "scop"} {
		ds := benchDataset(b, name)
		for _, mode := range []struct {
			name string
			seq  bool
		}{{"sequential", true}, {"overlap", false}} {
			b.Run(fmt.Sprintf("%s/%s", name, mode.name), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					res, err := ind.DiscoverNary(ds.DB, ind.NaryOptions{
						MaxArity:         3,
						Algorithm:        ind.NaryMerge,
						SequentialLevels: mode.seq,
					})
					if err != nil {
						b.Fatal(err)
					}
					if i == b.N-1 {
						b.ReportMetric(float64(len(res.Satisfied)), "nary-INDs")
						b.ReportMetric(float64(res.Stats.ItemsRead), "items/op")
					}
				}
			})
		}
	}
}

// BenchmarkKMVShardPlan compares shard boundary planners on the
// Zipf-skewed key population of datagen.Skewed: min/max planning splits
// the key span evenly and piles nearly all items into one shard, KMV
// sample planning splits the estimated value mass. The skew-max/mean
// metric (1.0 = perfectly even) lands in BENCH_ci.json via the custom
// metric capture, so the CI bench artifact tracks shard balance.
func BenchmarkKMVShardPlan(b *testing.B) {
	db := datagen.Skewed(datagen.SkewedConfig{Seed: 42, Rows: 20000})
	dir := b.TempDir()
	attrs, err := ind.Prepare(db, ind.ExportConfig{Dir: dir, Sketches: true})
	if err != nil {
		b.Fatal(err)
	}
	var keys []*ind.Attribute
	for _, a := range attrs {
		if a.Ref.Column == "id" || a.Ref.Column == "fk" {
			keys = append(keys, a)
		}
	}
	var cands []ind.Candidate
	for _, d := range keys {
		for _, r := range keys {
			if d != r {
				cands = append(cands, ind.Candidate{Dep: d, Ref: r})
			}
		}
	}
	for _, p := range []struct {
		name    string
		planner ind.ShardPlanner
	}{{"minmax", ind.PlannerMinMax}, {"kmv", ind.PlannerKMV}} {
		b.Run("planner="+p.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := ind.ShardedSpiderMerge(cands, ind.ShardedMergeOptions{
					Shards: 4, Planner: p.planner,
				})
				if err != nil {
					b.Fatal(err)
				}
				if i == b.N-1 {
					var total, max int64
					for _, n := range res.Stats.ShardItemsRead {
						total += n
						if n > max {
							max = n
						}
					}
					if total > 0 {
						mean := float64(total) / float64(len(res.Stats.ShardItemsRead))
						b.ReportMetric(float64(max)/mean, "skew-max/mean")
					}
					b.ReportMetric(float64(total), "items/op")
				}
			}
		})
	}
}

// --- Columnar block store: text vs block encoding ------------------------

// BenchmarkBlockStore times writing and scanning one sorted value file
// in each encoding over a prefix-heavy value population (the shape of
// accession numbers and encoded tuples). bytes/value reports the on-disk
// or read I/O cost per delivered value.
func BenchmarkBlockStore(b *testing.B) {
	vals := make([]string, 100_000)
	for i := range vals {
		vals[i] = fmt.Sprintf("sg_accession/P%07d/rev-%03d", i/7, i%7)
	}
	for _, format := range []valfile.Format{valfile.FormatText, valfile.FormatBlock} {
		b.Run(fmt.Sprintf("write/%s", format), func(b *testing.B) {
			dir := b.TempDir()
			for i := 0; i < b.N; i++ {
				path := fmt.Sprintf("%s/w%d.val", dir, i)
				if _, err := valfile.WriteAllFormat(path, vals, format); err != nil {
					b.Fatal(err)
				}
				if i == b.N-1 {
					fi, err := os.Stat(path)
					if err != nil {
						b.Fatal(err)
					}
					b.ReportMetric(float64(fi.Size())/float64(len(vals)), "bytes/value")
				}
			}
		})
		b.Run(fmt.Sprintf("read/%s", format), func(b *testing.B) {
			path := fmt.Sprintf("%s/r.val", b.TempDir())
			if _, err := valfile.WriteAllFormat(path, vals, format); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var counter valfile.ReadCounter
				r, err := valfile.Open(path, &counter)
				if err != nil {
					b.Fatal(err)
				}
				n := 0
				for {
					if _, ok := r.Next(); !ok {
						break
					}
					n++
				}
				if err := r.Close(); err != nil {
					b.Fatal(err)
				}
				if n != len(vals) {
					b.Fatalf("read %d values, want %d", n, len(vals))
				}
				if i == b.N-1 {
					b.ReportMetric(float64(counter.TotalBytes())/float64(n), "bytes/value")
				}
			}
		})
	}
}

// BenchmarkNaryFormat runs the merge-backed n-ary engine in both value
// file encodings: tuplebytes/op is the raw I/O of the encoded-tuple
// levels (arity ≥ 2), the stream the front-coded block format exists to
// shrink — encoded tuples share the long prefixes of their components.
func BenchmarkNaryFormat(b *testing.B) {
	ds := benchDataset(b, "uniprot")
	for _, format := range []valfile.Format{valfile.FormatText, valfile.FormatBlock} {
		b.Run(format.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := ind.DiscoverNary(ds.DB, ind.NaryOptions{
					MaxArity:  3,
					Algorithm: ind.NaryMerge,
					Sort:      extsort.Config{Format: format},
				})
				if err != nil {
					b.Fatal(err)
				}
				if i == b.N-1 {
					var tupleBytes int64
					for arity := 2; arity < len(res.Stats.BytesReadByArity); arity++ {
						tupleBytes += res.Stats.BytesReadByArity[arity]
					}
					b.ReportMetric(float64(tupleBytes), "tuplebytes/op")
					b.ReportMetric(float64(res.Stats.BytesRead), "bytes/op")
					b.ReportMetric(float64(len(res.Satisfied)), "nary-INDs")
				}
			}
		})
	}
}

// BenchmarkEmbeddedMerge times embedded-IND discovery (the Sec 7
// transform extension) with the per-candidate Algorithm 1 reference vs
// the merge-front engine, which folds every derived value set into one
// shared (optionally sharded) heap merge and reads each referenced file
// at most once.
func BenchmarkEmbeddedMerge(b *testing.B) {
	ds := benchDataset(b, "uniprot")
	for _, e := range []struct {
		name   string
		algo   ind.EmbeddedEngine
		shards int
	}{
		{"algorithm-one", ind.EmbeddedAlgorithmOne, 0},
		{"merge", ind.EmbeddedMerge, 0},
		{"merge-shards=4", ind.EmbeddedMerge, 4},
	} {
		b.Run(e.name, func(b *testing.B) {
			b.ReportAllocs()
			dir := b.TempDir()
			for i := 0; i < b.N; i++ {
				var counter valfile.ReadCounter
				res, err := ind.FindEmbedded(ds.DB, ds.Attrs, ind.EmbeddedOptions{
					Dir:       fmt.Sprintf("%s/run%d", dir, i),
					Counter:   &counter,
					Algorithm: e.algo,
					Shards:    e.shards,
				})
				if err != nil {
					b.Fatal(err)
				}
				if i == b.N-1 {
					b.ReportMetric(float64(len(res.Satisfied)), "embedded-INDs")
					b.ReportMetric(float64(res.Stats.ItemsRead), "items/op")
				}
			}
		})
	}
}

// BenchmarkStoreBackends runs the full extraction + spider-merge
// pipeline on UniProt with each storage backend holding the sorted
// value sets: files in both encodings, plain memory, and a read-only
// snapshot over memory. Same INDs everywhere; the spread is the cost of
// where the bytes live.
func BenchmarkStoreBackends(b *testing.B) {
	mk := func() *Database { return GenerateUniProt(DatasetConfig{Seed: 42, Scale: 0.15}) }
	for _, be := range []struct {
		name  string
		store func(dir string) *Store
	}{
		{"fs-text", func(dir string) *Store { return NewFSStore(dir, FormatText) }},
		{"fs-block", func(dir string) *Store { return NewFSStore(dir, FormatBlock) }},
		{"mem", func(string) *Store { return NewMemStore() }},
		{"snapshot", func(string) *Store { return NewSnapshotStore() }},
	} {
		b.Run(be.name, func(b *testing.B) {
			db := mk()
			for i := 0; i < b.N; i++ {
				res, err := FindINDs(db, Options{
					Algorithm: SpiderMerge,
					Store:     be.store(b.TempDir()),
				})
				if err != nil {
					b.Fatal(err)
				}
				if i == b.N-1 {
					b.ReportMetric(float64(len(res.INDs)), "INDs")
					b.ReportMetric(float64(res.Stats.BytesRead), "bytes/op")
				}
			}
		})
	}
}

// BenchmarkSnapshotReaders scales concurrent brute-force workers over
// one snapshot backend: the pooled-cursor read path the planned
// indserved daemon sits on. Results must not move with the worker
// count.
func BenchmarkSnapshotReaders(b *testing.B) {
	db := GenerateUniProt(DatasetConfig{Seed: 42, Scale: 0.15})
	base, err := FindINDs(db, Options{Algorithm: InMemory})
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 4, 8, 16} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := FindINDs(db, Options{
					Algorithm: BruteForceParallel,
					Workers:   workers,
					Store:     NewSnapshotStore(),
				})
				if err != nil {
					b.Fatal(err)
				}
				if len(res.INDs) != len(base.INDs) {
					b.Fatalf("workers=%d changed results: %d vs %d INDs", workers, len(res.INDs), len(base.INDs))
				}
				if i == b.N-1 {
					b.ReportMetric(float64(len(res.INDs)), "INDs")
				}
			}
		})
	}
}
