package spider

import (
	"fmt"
	"reflect"
	"testing"
)

// This file is the cross-backend acceptance property: every discovery
// mode must return the identical IND set whichever storage backend
// holds the sorted value sets — files in either encoding, plain
// memory, or a read-only snapshot. The backends differ in where bytes
// live, never in values delivered.

// storeBackends returns one fresh Store per backend under test.
func storeBackends() map[string]func() *Store {
	return map[string]func() *Store{
		"fs-text":  func() *Store { return NewFSStore("", FormatText) },
		"fs-block": func() *Store { return NewFSStore("", FormatBlock) },
		"mem":      func() *Store { return NewMemStore() },
		"snapshot": func() *Store { return NewSnapshotStore() },
	}
}

func TestExactINDsIdenticalAcrossBackends(t *testing.T) {
	if testing.Short() {
		t.Skip("dataset generation in -short mode")
	}
	for name, mk := range formatDatabases(t) {
		t.Run(name, func(t *testing.T) {
			want, err := FindINDs(mk(), Options{Algorithm: InMemory})
			if err != nil {
				t.Fatal(err)
			}
			for backend, mkStore := range storeBackends() {
				for _, algo := range []Algorithm{BruteForce, SinglePass, SpiderMerge} {
					for _, shards := range []int{1, 4} {
						if shards > 1 && algo != SpiderMerge {
							continue
						}
						opts := Options{Algorithm: algo, Shards: shards, Store: mkStore()}
						label := fmt.Sprintf("%s/%v/shards=%d", backend, algo, shards)
						got, err := FindINDs(mk(), opts)
						if err != nil {
							t.Fatalf("%s: %v", label, err)
						}
						if !reflect.DeepEqual(got.INDs, want.INDs) {
							t.Errorf("%s: INDs = %v, want %v", label, got.INDs, want.INDs)
						}
						if got.Stats.BytesRead == 0 && len(got.INDs) > 0 {
							t.Errorf("%s: BytesRead = 0 with results delivered", label)
						}
					}
				}
			}
		})
	}
}

// TestStreamingIgnoresStore pins the documented precedence: Streaming
// serves cursors straight from sort runs, so a Store — even an
// in-memory one that never sees the values — must not change results.
func TestStreamingIgnoresStore(t *testing.T) {
	if testing.Short() {
		t.Skip("dataset generation in -short mode")
	}
	db := adversarialDatabase(t)
	want, err := FindINDs(db, Options{Algorithm: InMemory})
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{1, 4} {
		got, err := FindINDs(db, Options{
			Algorithm: SpiderMerge, Streaming: true, Shards: shards, Store: NewMemStore(),
		})
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if !reflect.DeepEqual(got.INDs, want.INDs) {
			t.Errorf("shards=%d: INDs = %v, want %v", shards, got.INDs, want.INDs)
		}
	}
}

func TestPartialINDsIdenticalAcrossBackends(t *testing.T) {
	if testing.Short() {
		t.Skip("dataset generation in -short mode")
	}
	for name, mk := range formatDatabases(t) {
		t.Run(name, func(t *testing.T) {
			ref, _, err := FindPartialINDs(mk(), PartialOptions{Threshold: 0.5})
			if err != nil {
				t.Fatal(err)
			}
			for backend, mkStore := range storeBackends() {
				for _, algo := range []Algorithm{BruteForce, SpiderMerge} {
					for _, shards := range []int{1, 4} {
						if shards > 1 && algo != SpiderMerge {
							continue
						}
						opts := PartialOptions{
							Threshold: 0.5, Algorithm: algo, Shards: shards, Store: mkStore(),
						}
						label := fmt.Sprintf("%s/%v/shards=%d", backend, algo, shards)
						got, _, err := FindPartialINDs(mk(), opts)
						if err != nil {
							t.Fatalf("%s: %v", label, err)
						}
						if !reflect.DeepEqual(got, ref) {
							t.Errorf("%s: partials = %v, want %v", label, got, ref)
						}
					}
				}
			}
		})
	}
}

func TestNaryINDsIdenticalAcrossBackends(t *testing.T) {
	if testing.Short() {
		t.Skip("dataset generation in -short mode")
	}
	for name, mk := range formatDatabases(t) {
		t.Run(name, func(t *testing.T) {
			ref, _, err := FindNaryINDs(mk(), NaryOptions{MaxArity: 3, Algorithm: InMemory})
			if err != nil {
				t.Fatal(err)
			}
			for backend, mkStore := range storeBackends() {
				for _, shards := range []int{1, 4} {
					opts := NaryOptions{
						MaxArity: 3, Algorithm: SpiderMerge, Shards: shards, Store: mkStore(),
					}
					label := fmt.Sprintf("%s/shards=%d", backend, shards)
					got, _, err := FindNaryINDs(mk(), opts)
					if err != nil {
						t.Fatalf("%s: %v", label, err)
					}
					if !reflect.DeepEqual(got, ref) {
						t.Errorf("%s: n-ary INDs = %v, want %v", label, got, ref)
					}
				}
			}
		})
	}
}

func TestEmbeddedINDsIdenticalAcrossBackends(t *testing.T) {
	if testing.Short() {
		t.Skip("dataset generation in -short mode")
	}
	mk := func() *Database { return GenerateUniProt(DatasetConfig{Scale: 0.05}) }
	ref, _, err := FindEmbeddedINDs(mk())
	if err != nil {
		t.Fatal(err)
	}
	for backend, mkStore := range storeBackends() {
		for _, algo := range []Algorithm{BruteForce, SpiderMerge} {
			got, _, err := FindEmbeddedINDsWith(mk(), EmbeddedOptions{Algorithm: algo, Store: mkStore()})
			if err != nil {
				t.Fatalf("%s/%v: %v", backend, algo, err)
			}
			if !reflect.DeepEqual(got, ref) {
				t.Errorf("%s/%v: embedded INDs = %v, want %v", backend, algo, got, ref)
			}
		}
	}
}

// TestSnapshotBackendConcurrentReaders runs the parallel engine over a
// snapshot store with a wide worker pool: the read-only snapshot must
// serve all workers concurrently and produce the exact IND set. Run
// under -race this is the indserved serving-path precondition.
func TestSnapshotBackendConcurrentReaders(t *testing.T) {
	if testing.Short() {
		t.Skip("dataset generation in -short mode")
	}
	db := GenerateUniProt(DatasetConfig{Scale: 0.05})
	want, err := FindINDs(db, Options{Algorithm: InMemory})
	if err != nil {
		t.Fatal(err)
	}
	got, err := FindINDs(db, Options{
		Algorithm: BruteForceParallel, Workers: 8, Store: NewSnapshotStore(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.INDs, want.INDs) {
		t.Errorf("INDs = %v, want %v", got.INDs, want.INDs)
	}
}
